// Sharded scatter-gather fan-out: the corpus snapshot partitioned by
// consistent hashing over document names, searched shard-by-shard with
// per-shard deadline budgets carved from the request deadline.
//
// The merge is exact: each shard returns its local top k under the
// profile's total rank order (rank, then document name, then node — the
// same comparator the unsharded path sorts with), and any answer
// outside its shard's top k is dominated by k answers from that same
// shard, so merging the per-shard lists and truncating to k reproduces
// the global top k byte-for-byte. TestSearchShardedMatchesUnsharded and
// the serving layer's differential test pin this equivalence.
//
// Degradation is the one divergence: a shard that exhausts its carved
// deadline while the request as a whole is still alive is dropped from
// the merge and reported in TimedOutShards — partial answers beat a
// 504 when one shard is cold or slow. A degraded response is never
// cached upstream (see the serving layer).
package corpus

import (
	"context"
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/algebra"
	"repro/internal/plan"
	"repro/internal/profile"
	"repro/internal/tpq"
)

// vnodesPerShard is the number of points each shard owns on the hash
// ring. More vnodes smooth the document distribution and shrink the
// fraction of names that move when the shard count changes.
const vnodesPerShard = 64

// DefaultShardDeadlineFrac is the fraction of the request's remaining
// deadline each shard is granted when ShardOptions.DeadlineFrac is
// unset: most of the budget, with headroom left for the merge.
const DefaultShardDeadlineFrac = 0.9

// hash64 is the ring hash (FNV-1a: stable across processes, so shard
// assignment survives restarts).
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// ShardNames partitions names across n shards by consistent hashing:
// each shard owns vnodesPerShard points on a ring and a document lands
// on the shard owning the first point at or after its own hash. The
// assignment depends only on (name, n) — not on what else is
// registered — so adding or removing a document never reshuffles the
// others, and changing n moves only ~1/n of the names. Relative
// insertion order is preserved within each shard.
func ShardNames(names []string, n int) [][]string {
	if n < 1 {
		n = 1
	}
	out := make([][]string, n)
	if n == 1 {
		out[0] = append([]string(nil), names...)
		return out
	}
	type point struct {
		h     uint64
		shard int
	}
	ring := make([]point, 0, n*vnodesPerShard)
	for s := 0; s < n; s++ {
		for v := 0; v < vnodesPerShard; v++ {
			ring = append(ring, point{hash64(fmt.Sprintf("shard-%d/%d", s, v)), s})
		}
	}
	sort.Slice(ring, func(i, j int) bool {
		if ring[i].h != ring[j].h {
			return ring[i].h < ring[j].h
		}
		return ring[i].shard < ring[j].shard
	})
	for _, name := range names {
		h := hash64(name)
		i := sort.Search(len(ring), func(i int) bool { return ring[i].h >= h })
		if i == len(ring) {
			i = 0 // wrap: past the last point lands on the first
		}
		out[ring[i].shard] = append(out[ring[i].shard], name)
	}
	return out
}

// ShardOptions tunes SearchSharded.
type ShardOptions struct {
	// Shards is the number of consistent-hash partitions; values below 2
	// fall back to a single shard (equivalent to SearchContext).
	Shards int
	// DeadlineFrac is the fraction of the request's *remaining* deadline
	// granted to each shard (0 means DefaultShardDeadlineFrac). With no
	// request deadline, shards are unbounded and the fan-out never
	// degrades.
	DeadlineFrac float64
	// ShardStart, when non-nil, runs at the start of each shard's work,
	// after its deadline is carved — a test seam for simulating a slow
	// shard. Production callers leave it nil.
	ShardStart func(shard int)
}

// ShardedResponse is a scatter-gather outcome: the merged Response
// plus the degradation report.
type ShardedResponse struct {
	Response
	// Degraded is true when at least one shard blew its deadline budget
	// and was dropped from the merge; Results then cover only the
	// surviving shards (and DocsSearched counts only their documents).
	Degraded bool
	// TimedOutShards lists the dropped shards' indices in ascending
	// order.
	TimedOutShards []int
	// ShardsRun is the number of shards that held at least one document
	// (empty shards are skipped, not scattered).
	ShardsRun int
}

// shardContext carves one shard's deadline budget out of the parent's
// remaining time: frac of what is left at carve time. With no parent
// deadline the shard inherits plain cancellation.
func shardContext(ctx context.Context, frac float64) (context.Context, context.CancelFunc) {
	dl, ok := ctx.Deadline()
	if !ok {
		return context.WithCancel(ctx)
	}
	remaining := time.Until(dl)
	if remaining <= 0 {
		return context.WithCancel(ctx) // already expired; the shard will observe it
	}
	budget := time.Duration(frac * float64(remaining))
	return context.WithDeadline(ctx, time.Now().Add(budget))
}

// searchNamesSequential evaluates the encoded query against names in
// order, one plan at a time (the scatter supplies the parallelism).
// A context expiry mid-loop returns the hits gathered so far — the
// caller inspects ctx to tell a completed shard from a truncated one.
// A plan build error fails the shard (and the whole fan-out).
func (s *Snapshot) searchNamesSequential(ctx context.Context, names []string, encoded *tpq.Query, prof *profile.Profile, k int, strat plan.Strategy) ([]docHit, error) {
	var hits []docHit
	for _, name := range names {
		if algebra.ContextErr(ctx) != nil {
			return hits, nil
		}
		p, err := plan.BuildWith(s.entries[name].idx, encoded, prof, k,
			plan.Options{Strategy: strat, Parallelism: 1})
		if err != nil {
			return nil, fmt.Errorf("corpus: %s: %w", name, err)
		}
		answers, err := p.ExecuteContext(ctx)
		p.Release()
		if err != nil {
			return hits, nil // ctx expiry; caller classifies it
		}
		for _, a := range answers {
			hits = append(hits, docHit{doc: name, a: a})
		}
	}
	return hits, nil
}

// SearchSharded evaluates the query against this snapshot as a
// scatter-gather over consistent-hash shards. Shard workers draw from
// the corpus's shared budget (SetBudget) exactly like the unsharded
// fan-out's helpers, so shards × per-plan workers can never
// oversubscribe the machine. With no request deadline the result is
// always complete; with one, shards that exhaust their carved budget
// are dropped and reported (Degraded/TimedOutShards) as long as the
// request itself is still alive — a dead request returns its error,
// never a partial merge.
func (s *Snapshot) SearchSharded(ctx context.Context, q *tpq.Query, prof *profile.Profile, k int, strat plan.Strategy, opts ShardOptions) (*ShardedResponse, error) {
	if q == nil {
		return nil, fmt.Errorf("corpus: nil query")
	}
	if k < 0 {
		return nil, fmt.Errorf("corpus: negative k %d (use 0 for the default of 10)", k)
	}
	if k == 0 {
		k = 10
	}
	frac := opts.DeadlineFrac
	if frac <= 0 || frac > 1 {
		frac = DefaultShardDeadlineFrac
	}
	start := time.Now()

	encoded, applied, err := s.encodeForSearch(q, prof)
	if err != nil {
		return nil, err
	}

	shards := ShardNames(s.names, opts.Shards)
	work := make([]int, 0, len(shards))
	for i, sh := range shards {
		if len(sh) > 0 {
			work = append(work, i)
		}
	}

	type shardResult struct {
		hits     []docHit
		timedOut bool
		err      error
	}
	results := make([]shardResult, len(shards))
	var next atomic.Int64
	runShard := func(i int) {
		sctx, cancel := shardContext(ctx, frac)
		defer cancel()
		if opts.ShardStart != nil {
			opts.ShardStart(i)
		}
		hits, err := s.searchNamesSequential(sctx, shards[i], encoded, prof, k, strat)
		if err != nil {
			results[i].err = err
			return
		}
		if algebra.ContextErr(sctx) != nil {
			if perr := algebra.ContextErr(ctx); perr != nil {
				results[i].err = perr // the request itself died, not just this shard
				return
			}
			results[i].timedOut = true
			return
		}
		// Local top k under the global comparator: anything ranked below
		// a shard's own kth answer cannot appear in the merged top k.
		results[i].hits = rankHits(hits, prof, k)
	}
	drain := func() {
		for {
			j := int(next.Add(1)) - 1
			if j >= len(work) {
				return
			}
			if algebra.ContextErr(ctx) != nil {
				return
			}
			runShard(work[j])
		}
	}
	// Caller + budget-granted helpers, exactly like the unsharded
	// fan-out: the caller always drains; helpers join only while the
	// shared budget grants tokens (or up to a private machine's worth in
	// library use).
	budget := s.c.budget
	maxHelpers := len(work) - 1
	if budget == nil && maxHelpers > runtime.GOMAXPROCS(0)-1 {
		maxHelpers = runtime.GOMAXPROCS(0) - 1
	}
	var wg sync.WaitGroup
	for h := 0; h < maxHelpers; h++ {
		if budget != nil && !budget.TryAcquire() {
			break
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if budget != nil {
				defer budget.Release()
			}
			drain()
		}()
	}
	drain()
	wg.Wait()

	if err := algebra.ContextErr(ctx); err != nil {
		return nil, err
	}
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
	}

	var (
		all      []docHit
		timedOut []int
		docs     int
	)
	for i, r := range results {
		if r.timedOut {
			timedOut = append(timedOut, i)
			continue
		}
		all = append(all, r.hits...)
		docs += len(shards[i])
	}
	resp := s.materialize(rankHits(all, prof, k), applied, docs, time.Since(start))
	return &ShardedResponse{
		Response:       *resp,
		Degraded:       len(timedOut) > 0,
		TimedOutShards: timedOut,
		ShardsRun:      len(work),
	}, nil
}
