// Package corpus searches collections of XML documents — the setting of
// the paper's INEX study (a collection of IEEE articles). Each document
// gets its own index; queries fan out across documents in parallel and
// the per-document top-k lists are merged under the profile's rank order
// into a global top k.
//
// The corpus is *live*: documents can be added, replaced and deleted
// while searches are in flight. All reads go through an immutable
// copy-on-write Snapshot behind one atomic pointer — a search loads the
// pointer once and keeps a consistent view of every document, index and
// fingerprint for its whole execution, no matter how many swaps land
// meanwhile. Writers build the replacement per-document index off the
// swap path (Prepare), then publish a new snapshot under a short
// critical section (Commit/Delete). Every mutation bumps a monotonic
// corpus generation; each entry's fingerprint is stamped with the
// generation it was written at, so cache keys derived from a fingerprint
// can never alias across generations — not even when a document is
// replaced with byte-identical content.
//
// Caveat, as in any federated ranking: the query score S is tf·idf with
// per-document statistics, so S values are comparable across documents
// only to the extent their term statistics are; K (keyword-OR score) and
// V (value preferences) are statistics-light and merge cleanly. This
// mirrors how INEX participants merge per-article scores.
package corpus

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/algebra"
	"repro/internal/analysis"
	"repro/internal/index"
	"repro/internal/plan"
	"repro/internal/profile"
	"repro/internal/text"
	"repro/internal/tpq"
	"repro/internal/xmldoc"
)

// Entry is one immutable (document, index) pair inside a snapshot,
// stamped with the corpus generation at which it was written.
type Entry struct {
	name string
	doc  *xmldoc.Document
	idx  *index.Index
	gen  uint64

	// contentFP is the content hash (index.ContentFingerprint). Prepare
	// computes it eagerly — off the search path — but entries restored by
	// Load compute it lazily on first Fingerprint call.
	fpOnce    sync.Once
	contentFP string
}

// Name returns the entry's registered document name.
func (e *Entry) Name() string { return e.name }

// Document returns the entry's document.
func (e *Entry) Document() *xmldoc.Document { return e.doc }

// Index returns the entry's prebuilt index.
func (e *Entry) Index() *index.Index { return e.idx }

// Generation returns the corpus generation at which this entry was
// written (monotonically increasing across all mutations).
func (e *Entry) Generation() uint64 { return e.gen }

// Fingerprint returns the entry's generation-stamped fingerprint:
// the content hash qualified by the write generation. The stamp
// guarantees that cache keys minted against one write of a name can
// never be satisfied after a replacement — even a replacement with
// byte-identical content gets a fresh key space, which is what makes
// targeted cache invalidation sound (DESIGN.md §15).
func (e *Entry) Fingerprint() string {
	e.fpOnce.Do(func() {
		if e.contentFP == "" {
			e.contentFP = index.ContentFingerprint(e.idx)
		}
	})
	return e.contentFP + "@g" + strconv.FormatUint(e.gen, 10)
}

// Snapshot is one immutable view of the corpus: a consistent set of
// entries plus the corpus generation at capture time. Searches resolve
// every lookup (existence, fingerprint, index, document) against one
// snapshot so a concurrent swap can never mix generations mid-request.
type Snapshot struct {
	c       *Corpus
	names   []string // insertion order
	entries map[string]*Entry
	gen     uint64

	fpOnce sync.Once
	fp     string
}

// Generation returns the corpus generation this snapshot was taken at.
func (s *Snapshot) Generation() uint64 { return s.gen }

// Len returns the number of documents in the snapshot.
func (s *Snapshot) Len() int { return len(s.names) }

// Names returns the document names in insertion order.
func (s *Snapshot) Names() []string { return append([]string(nil), s.names...) }

// Entry returns a document's entry by name.
func (s *Snapshot) Entry(name string) (*Entry, bool) {
	e, ok := s.entries[name]
	return e, ok
}

// Fingerprint combines the snapshot generation with every entry's
// generation-stamped fingerprint into the snapshot's registry
// fingerprint (sorted by name, so document insertion order does not
// split caches keyed on it). The generation is folded in so the
// fingerprint moves strictly forward across mutations — without it, a
// put followed by a delete restores the old entry set and would revert
// the fingerprint, re-opening a retired fan-out key space. Fan-out
// cache entries are invalidated on every mutation regardless, so the
// stamp costs no cache reuse. Computed once per snapshot and cached —
// fan-out cache-key derivation after the first is a pointer load.
func (s *Snapshot) Fingerprint() string {
	s.fpOnce.Do(func() {
		names := append([]string(nil), s.names...)
		sort.Strings(names)
		h := sha256.New()
		fmt.Fprintf(h, "gen=%d;", s.gen)
		for _, n := range names {
			fmt.Fprintf(h, "%s=%s;", n, s.entries[n].Fingerprint())
		}
		s.fp = "corpus:" + hex.EncodeToString(h.Sum(nil)[:16])
	})
	return s.fp
}

// Corpus is a set of named, indexed XML documents behind an atomically
// swappable snapshot.
type Corpus struct {
	pipe text.Pipeline

	// budget, when set via SetBudget, gates the fan-out's helper
	// goroutines. Nil falls back to a private per-call allowance of
	// GOMAXPROCS-1 helpers (the library default).
	budget plan.WorkerBudget

	// wmu serializes writers; readers never take it. The snapshot
	// pointer is the only shared mutable state.
	wmu  sync.Mutex
	snap atomic.Pointer[Snapshot]
}

// SetBudget shares a goroutine budget with the fan-out: helper
// goroutines beyond the caller's own spawn only while the budget grants
// tokens. The serving layer passes the scheduler's budget here — the
// same one plan execution draws from — so fan-out × per-query workers
// can never multiply into GOMAXPROCS² goroutines (the old private
// semaphore allowed exactly that). Call before serving traffic; the
// budget is read without synchronization.
func (c *Corpus) SetBudget(b plan.WorkerBudget) { c.budget = b }

// New creates an empty corpus with the given text pipeline.
func New(pipe text.Pipeline) *Corpus {
	c := &Corpus{pipe: pipe}
	c.snap.Store(&Snapshot{c: c, entries: map[string]*Entry{}})
	return c
}

// Snapshot returns the current immutable view. Callers that need a
// consistent multi-step read (check existence, derive a cache key, then
// execute) MUST resolve every step against one returned snapshot
// rather than calling the Corpus accessors repeatedly.
func (c *Corpus) Snapshot() *Snapshot { return c.snap.Load() }

// Generation returns the current corpus generation: 0 for an empty,
// never-mutated corpus, bumped by one on every Commit/Delete.
func (c *Corpus) Generation() uint64 { return c.snap.Load().gen }

// Mutation describes one applied corpus mutation.
type Mutation struct {
	// Op is "put" or "delete".
	Op string
	// Name is the mutated document's name.
	Name string
	// Gen is the corpus generation after the mutation; the mutated
	// entry (for puts) is stamped with it.
	Gen uint64
	// Created is true when a put introduced a new name.
	Created bool
	// Nodes is the document's node count (puts only).
	Nodes int
}

// Prepared is an indexed document ready to be swapped into the corpus.
// Building it is the expensive part of a mutation (index construction
// plus content hashing) and happens outside every lock, so concurrent
// searches — and other writers — are never blocked behind it.
type Prepared struct {
	doc       *xmldoc.Document
	ix        *index.Index
	contentFP string
}

// Nodes returns the prepared document's node count.
func (p *Prepared) Nodes() int { return p.doc.Len() }

// Prepare indexes and fingerprints doc for a later Commit. It takes no
// locks.
func (c *Corpus) Prepare(doc *xmldoc.Document) *Prepared {
	ix := index.Build(doc, c.pipe)
	return &Prepared{doc: doc, ix: ix, contentFP: index.ContentFingerprint(ix)}
}

// Commit swaps a prepared document in under name, replacing any
// previous entry, and publishes a new snapshot. The critical section is
// map-copy sized — the index build already happened in Prepare.
func (c *Corpus) Commit(name string, p *Prepared) Mutation {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	old := c.snap.Load()
	gen := old.gen + 1
	e := &Entry{name: name, doc: p.doc, idx: p.ix, gen: gen, contentFP: p.contentFP}
	ns := &Snapshot{c: c, gen: gen, entries: make(map[string]*Entry, len(old.entries)+1)}
	for k, v := range old.entries {
		ns.entries[k] = v
	}
	_, existed := old.entries[name]
	ns.entries[name] = e
	ns.names = old.names
	if !existed {
		ns.names = append(append([]string(nil), old.names...), name)
	}
	c.snap.Store(ns)
	return Mutation{Op: "put", Name: name, Gen: gen, Created: !existed, Nodes: p.doc.Len()}
}

// Put is Prepare followed by Commit: index doc off-lock, then swap it
// in under name.
func (c *Corpus) Put(name string, doc *xmldoc.Document) Mutation {
	return c.Commit(name, c.Prepare(doc))
}

// Delete removes name and publishes a new snapshot. It reports false —
// and publishes nothing — when the name is not registered.
func (c *Corpus) Delete(name string) (Mutation, bool) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	old := c.snap.Load()
	if _, ok := old.entries[name]; !ok {
		return Mutation{}, false
	}
	gen := old.gen + 1
	ns := &Snapshot{c: c, gen: gen, entries: make(map[string]*Entry, len(old.entries)-1)}
	for k, v := range old.entries {
		if k != name {
			ns.entries[k] = v
		}
	}
	ns.names = make([]string, 0, len(old.names)-1)
	for _, n := range old.names {
		if n != name {
			ns.names = append(ns.names, n)
		}
	}
	c.snap.Store(ns)
	return Mutation{Op: "delete", Name: name, Gen: gen}, true
}

// Add indexes doc under name. Adding a name twice replaces the document.
// It is Put without the returned Mutation — the original library API.
func (c *Corpus) Add(name string, doc *xmldoc.Document) {
	c.Put(name, doc)
}

// AddXML parses src and adds it under name.
func (c *Corpus) AddXML(name, src string) error {
	doc, err := xmldoc.ParseString(src)
	if err != nil {
		return fmt.Errorf("corpus: %s: %w", name, err)
	}
	c.Add(name, doc)
	return nil
}

// Len returns the number of documents.
func (c *Corpus) Len() int { return c.snap.Load().Len() }

// Names returns the document names in insertion order.
func (c *Corpus) Names() []string { return c.snap.Load().Names() }

// Document returns a document by name.
func (c *Corpus) Document(name string) (*xmldoc.Document, bool) {
	e, ok := c.snap.Load().entries[name]
	if !ok {
		return nil, false
	}
	return e.doc, true
}

// Index returns the prebuilt index of a document by name, so callers
// layering per-document engines over a corpus (e.g. the serving layer)
// can reuse it instead of re-indexing.
func (c *Corpus) Index(name string) (*index.Index, bool) {
	e, ok := c.snap.Load().entries[name]
	if !ok {
		return nil, false
	}
	return e.idx, true
}

// Result is one globally ranked answer.
type Result struct {
	DocName string
	Node    xmldoc.NodeID
	Path    string
	S, K    float64
	Snippet string
}

// Response is a corpus search outcome.
type Response struct {
	Results    []Result
	AppliedSRs []string
	Elapsed    time.Duration
	// DocsSearched is the number of documents the query ran against.
	DocsSearched int
}

// Search personalizes q with prof (once — the rewriting is document-
// independent), evaluates it against every document in parallel, and
// merges the per-document top-k lists into the global top k.
func (c *Corpus) Search(q *tpq.Query, prof *profile.Profile, k int, strat plan.Strategy) (*Response, error) {
	//pimento:allow ctxbg context-free public entry point whose contract is run-to-completion; cancellable callers use SearchContext
	return c.Snapshot().SearchContext(context.Background(), q, prof, k, strat)
}

// SearchContext is Search under a context, evaluated against the
// snapshot current at call time: per-document executions carry
// cancellation checkpoints, documents whose turn comes after the
// context is done are skipped outright, and a cancelled fan-out returns
// ctx's error instead of a partial merge.
func (c *Corpus) SearchContext(ctx context.Context, q *tpq.Query, prof *profile.Profile, k int, strat plan.Strategy) (*Response, error) {
	return c.Snapshot().SearchContext(ctx, q, prof, k, strat)
}

// SearchContext evaluates the query against exactly this snapshot's
// documents — mutations committed after the snapshot was taken are
// invisible, so a search admitted before a swap completes against the
// old, internally consistent view (no torn reads).
func (s *Snapshot) SearchContext(ctx context.Context, q *tpq.Query, prof *profile.Profile, k int, strat plan.Strategy) (*Response, error) {
	if q == nil {
		return nil, fmt.Errorf("corpus: nil query")
	}
	if k < 0 {
		return nil, fmt.Errorf("corpus: negative k %d (use 0 for the default of 10)", k)
	}
	if k == 0 {
		k = 10
	}
	start := time.Now()

	encoded, applied, err := s.encodeForSearch(q, prof)
	if err != nil {
		return nil, err
	}

	names := s.names

	var (
		hitMu  sync.Mutex
		hits   []docHit
		errMu  sync.Mutex
		runErr error
		next   atomic.Int64
	)
	// searchDoc evaluates one document. Per-document plans run strictly
	// sequentially (Parallelism 1): the fan-out itself is the
	// parallelism, and letting each per-doc plan auto-resolve to
	// GOMAXPROCS workers used to multiply into GOMAXPROCS² goroutines.
	searchDoc := func(name string) {
		p, err := plan.BuildWith(s.entries[name].idx, encoded, prof, k,
			plan.Options{Strategy: strat, Parallelism: 1})
		if err != nil {
			errMu.Lock()
			if runErr == nil {
				runErr = fmt.Errorf("corpus: %s: %w", name, err)
			}
			errMu.Unlock()
			return
		}
		defer p.Release()
		answers, err := p.ExecuteContext(ctx)
		if err != nil {
			return // ctx.Err() is reported once below, not per document
		}
		hitMu.Lock()
		for _, a := range answers {
			hits = append(hits, docHit{doc: name, a: a})
		}
		hitMu.Unlock()
	}
	drain := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= len(names) {
				return
			}
			if algebra.ContextErr(ctx) != nil {
				return // fan-out aborted before this document's turn
			}
			searchDoc(names[i])
		}
	}
	// The caller's goroutine always works; helpers join only while the
	// budget grants tokens. With no shared budget (library use), allow a
	// private machine's worth per call — the legacy concurrency, minus
	// the goroutine-per-document spawn.
	budget := s.c.budget
	maxHelpers := len(names) - 1
	if budget == nil && maxHelpers > runtime.GOMAXPROCS(0)-1 {
		maxHelpers = runtime.GOMAXPROCS(0) - 1
	}
	var wg sync.WaitGroup
	for h := 0; h < maxHelpers; h++ {
		if budget != nil && !budget.TryAcquire() {
			break
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if budget != nil {
				defer budget.Release()
			}
			drain()
		}()
	}
	drain()
	wg.Wait()
	if err := algebra.ContextErr(ctx); err != nil {
		return nil, err
	}
	if runErr != nil {
		return nil, runErr
	}

	return s.materialize(rankHits(hits, prof, k), applied, len(names), time.Since(start)), nil
}

// docHit is one pre-merge answer: an algebra answer tagged with the
// document it came from.
type docHit struct {
	doc string
	a   algebra.Answer
}

// encodeForSearch runs the document-independent half of a fan-out
// once: the Section 5.2 ambiguity gate and the flock encoding of the
// profile's scoping rules into a single query.
func (s *Snapshot) encodeForSearch(q *tpq.Query, prof *profile.Profile) (*tpq.Query, []string, error) {
	if prof == nil {
		return q, nil, nil
	}
	if rep := analysis.DetectAmbiguityPrioritized(prof.VORs); rep.Ambiguous {
		return nil, nil, fmt.Errorf("corpus: ambiguous ordering rules: %s", rep.Suggestion)
	}
	return analysis.EncodeFlock(prof.SRs, q)
}

// rankHits sorts hits under the profile's total rank order — rank,
// then document name, then node, so the order is deterministic — and
// truncates to the top k. Both the unsharded merge and every per-shard
// local top k go through this one comparator; the sharded/unsharded
// byte-equivalence depends on them agreeing.
func rankHits(hits []docHit, prof *profile.Profile, k int) []docHit {
	ranker := algebra.NewRanker(prof)
	mode := algebra.ModeForProfile(prof)
	sort.SliceStable(hits, func(i, j int) bool {
		cmp := ranker.Compare(&hits[i].a, &hits[j].a, mode)
		if cmp != 0 {
			return cmp > 0
		}
		if hits[i].doc != hits[j].doc {
			return hits[i].doc < hits[j].doc
		}
		return hits[i].a.Node < hits[j].a.Node
	})
	if len(hits) > k {
		hits = hits[:k]
	}
	return hits
}

// materialize resolves ranked hits into wire results (paths and
// snippets) against this snapshot's documents.
func (s *Snapshot) materialize(hits []docHit, applied []string, docsSearched int, elapsed time.Duration) *Response {
	resp := &Response{
		AppliedSRs:   applied,
		Elapsed:      elapsed,
		DocsSearched: docsSearched,
	}
	for _, h := range hits {
		doc := s.entries[h.doc].doc
		resp.Results = append(resp.Results, Result{
			DocName: h.doc,
			Node:    h.a.Node,
			Path:    doc.Path(h.a.Node),
			S:       h.a.S,
			K:       h.a.K,
			Snippet: clip(doc.TextContent(h.a.Node), 90),
		})
	}
	return resp
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}
