// Package corpus searches collections of XML documents — the setting of
// the paper's INEX study (a collection of IEEE articles). Each document
// gets its own index; queries fan out across documents in parallel and
// the per-document top-k lists are merged under the profile's rank order
// into a global top k.
//
// Caveat, as in any federated ranking: the query score S is tf·idf with
// per-document statistics, so S values are comparable across documents
// only to the extent their term statistics are; K (keyword-OR score) and
// V (value preferences) are statistics-light and merge cleanly. This
// mirrors how INEX participants merge per-article scores.
package corpus

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/algebra"
	"repro/internal/analysis"
	"repro/internal/index"
	"repro/internal/plan"
	"repro/internal/profile"
	"repro/internal/text"
	"repro/internal/tpq"
	"repro/internal/xmldoc"
)

// Corpus is a set of named, indexed XML documents.
type Corpus struct {
	pipe text.Pipeline

	// budget, when set via SetBudget, gates the fan-out's helper
	// goroutines. Nil falls back to a private per-call allowance of
	// GOMAXPROCS-1 helpers (the library default).
	budget plan.WorkerBudget

	mu    sync.RWMutex
	names []string
	docs  map[string]*xmldoc.Document
	idx   map[string]*index.Index
}

// SetBudget shares a goroutine budget with the fan-out: helper
// goroutines beyond the caller's own spawn only while the budget grants
// tokens. The serving layer passes the scheduler's budget here — the
// same one plan execution draws from — so fan-out × per-query workers
// can never multiply into GOMAXPROCS² goroutines (the old private
// semaphore allowed exactly that). Call before serving traffic; the
// budget is read without synchronization.
func (c *Corpus) SetBudget(b plan.WorkerBudget) { c.budget = b }

// New creates an empty corpus with the given text pipeline.
func New(pipe text.Pipeline) *Corpus {
	return &Corpus{
		pipe: pipe,
		docs: make(map[string]*xmldoc.Document),
		idx:  make(map[string]*index.Index),
	}
}

// Add indexes doc under name. Adding a name twice replaces the document.
func (c *Corpus) Add(name string, doc *xmldoc.Document) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.docs[name]; !exists {
		c.names = append(c.names, name)
	}
	c.docs[name] = doc
	c.idx[name] = index.Build(doc, c.pipe)
}

// AddXML parses src and adds it under name.
func (c *Corpus) AddXML(name, src string) error {
	doc, err := xmldoc.ParseString(src)
	if err != nil {
		return fmt.Errorf("corpus: %s: %w", name, err)
	}
	c.Add(name, doc)
	return nil
}

// Len returns the number of documents.
func (c *Corpus) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.names)
}

// Names returns the document names in insertion order.
func (c *Corpus) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]string(nil), c.names...)
}

// Document returns a document by name.
func (c *Corpus) Document(name string) (*xmldoc.Document, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	d, ok := c.docs[name]
	return d, ok
}

// Index returns the prebuilt index of a document by name, so callers
// layering per-document engines over a corpus (e.g. the serving layer)
// can reuse it instead of re-indexing.
func (c *Corpus) Index(name string) (*index.Index, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ix, ok := c.idx[name]
	return ix, ok
}

// Result is one globally ranked answer.
type Result struct {
	DocName string
	Node    xmldoc.NodeID
	Path    string
	S, K    float64
	Snippet string
}

// Response is a corpus search outcome.
type Response struct {
	Results    []Result
	AppliedSRs []string
	Elapsed    time.Duration
	// DocsSearched is the number of documents the query ran against.
	DocsSearched int
}

// Search personalizes q with prof (once — the rewriting is document-
// independent), evaluates it against every document in parallel, and
// merges the per-document top-k lists into the global top k.
func (c *Corpus) Search(q *tpq.Query, prof *profile.Profile, k int, strat plan.Strategy) (*Response, error) {
	return c.SearchContext(context.Background(), q, prof, k, strat)
}

// SearchContext is Search under a context: per-document executions
// carry cancellation checkpoints, documents whose turn comes after the
// context is done are skipped outright, and a cancelled fan-out returns
// ctx's error instead of a partial merge.
func (c *Corpus) SearchContext(ctx context.Context, q *tpq.Query, prof *profile.Profile, k int, strat plan.Strategy) (*Response, error) {
	if q == nil {
		return nil, fmt.Errorf("corpus: nil query")
	}
	if k < 0 {
		return nil, fmt.Errorf("corpus: negative k %d (use 0 for the default of 10)", k)
	}
	if k == 0 {
		k = 10
	}
	start := time.Now()

	encoded := q
	var applied []string
	if prof != nil {
		if rep := analysis.DetectAmbiguityPrioritized(prof.VORs); rep.Ambiguous {
			return nil, fmt.Errorf("corpus: ambiguous ordering rules: %s", rep.Suggestion)
		}
		var err error
		encoded, applied, err = analysis.EncodeFlock(prof.SRs, q)
		if err != nil {
			return nil, err
		}
	}

	c.mu.RLock()
	names := append([]string(nil), c.names...)
	idx := make(map[string]*index.Index, len(names))
	docs := make(map[string]*xmldoc.Document, len(names))
	for _, n := range names {
		idx[n] = c.idx[n]
		docs[n] = c.docs[n]
	}
	c.mu.RUnlock()

	type docHit struct {
		doc string
		a   algebra.Answer
	}
	var (
		hitMu  sync.Mutex
		hits   []docHit
		errMu  sync.Mutex
		runErr error
		next   atomic.Int64
	)
	// searchDoc evaluates one document. Per-document plans run strictly
	// sequentially (Parallelism 1): the fan-out itself is the
	// parallelism, and letting each per-doc plan auto-resolve to
	// GOMAXPROCS workers used to multiply into GOMAXPROCS² goroutines.
	searchDoc := func(name string) {
		p, err := plan.BuildWith(idx[name], encoded, prof, k,
			plan.Options{Strategy: strat, Parallelism: 1})
		if err != nil {
			errMu.Lock()
			if runErr == nil {
				runErr = fmt.Errorf("corpus: %s: %w", name, err)
			}
			errMu.Unlock()
			return
		}
		defer p.Release()
		answers, err := p.ExecuteContext(ctx)
		if err != nil {
			return // ctx.Err() is reported once below, not per document
		}
		hitMu.Lock()
		for _, a := range answers {
			hits = append(hits, docHit{doc: name, a: a})
		}
		hitMu.Unlock()
	}
	drain := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= len(names) {
				return
			}
			if algebra.ContextErr(ctx) != nil {
				return // fan-out aborted before this document's turn
			}
			searchDoc(names[i])
		}
	}
	// The caller's goroutine always works; helpers join only while the
	// budget grants tokens. With no shared budget (library use), allow a
	// private machine's worth per call — the legacy concurrency, minus
	// the goroutine-per-document spawn.
	budget := c.budget
	maxHelpers := len(names) - 1
	if budget == nil && maxHelpers > runtime.GOMAXPROCS(0)-1 {
		maxHelpers = runtime.GOMAXPROCS(0) - 1
	}
	var wg sync.WaitGroup
	for h := 0; h < maxHelpers; h++ {
		if budget != nil && !budget.TryAcquire() {
			break
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if budget != nil {
				defer budget.Release()
			}
			drain()
		}()
	}
	drain()
	wg.Wait()
	if err := algebra.ContextErr(ctx); err != nil {
		return nil, err
	}
	if runErr != nil {
		return nil, runErr
	}

	ranker := algebra.NewRanker(prof)
	mode := algebra.ModeForProfile(prof)
	sort.SliceStable(hits, func(i, j int) bool {
		cmp := ranker.Compare(&hits[i].a, &hits[j].a, mode)
		if cmp != 0 {
			return cmp > 0
		}
		if hits[i].doc != hits[j].doc {
			return hits[i].doc < hits[j].doc
		}
		return hits[i].a.Node < hits[j].a.Node
	})
	if len(hits) > k {
		hits = hits[:k]
	}

	resp := &Response{
		AppliedSRs:   applied,
		Elapsed:      time.Since(start),
		DocsSearched: len(names),
	}
	for _, h := range hits {
		doc := docs[h.doc]
		resp.Results = append(resp.Results, Result{
			DocName: h.doc,
			Node:    h.a.Node,
			Path:    doc.Path(h.a.Node),
			S:       h.a.S,
			K:       h.a.K,
			Snippet: clip(doc.TextContent(h.a.Node), 90),
		})
	}
	return resp, nil
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
