package corpus

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/plan"
	"repro/internal/profile"
	"repro/internal/text"
	"repro/internal/tpq"
)

func carDoc(color, desc string, price int) string {
	return fmt.Sprintf(`<dealer><car><description>%s</description><price>%d</price><color>%s</color></car></dealer>`,
		desc, price, color)
}

func testCorpus(t *testing.T) *Corpus {
	t.Helper()
	c := New(text.Pipeline{})
	docs := map[string]string{
		"d1": carDoc("red", "good condition, city car", 900),
		"d2": carDoc("blue", "good condition and best bid welcome", 1200),
		"d3": carDoc("green", "rusty but cheap", 300),
		"d4": carDoc("red", "good condition, best bid, NYC pickup", 1500),
	}
	for name, src := range docs {
		if err := c.AddXML(name, src); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestCorpusBasics(t *testing.T) {
	c := testCorpus(t)
	if c.Len() != 4 {
		t.Fatalf("Len = %d", c.Len())
	}
	if _, ok := c.Document("d1"); !ok {
		t.Errorf("d1 missing")
	}
	if _, ok := c.Document("nope"); ok {
		t.Errorf("phantom document")
	}
	if err := c.AddXML("bad", "<broken"); err == nil {
		t.Errorf("broken XML must fail")
	}
}

func TestCorpusSearchMergesAcrossDocs(t *testing.T) {
	c := testCorpus(t)
	q := tpq.MustParse(`//car[./description[. ftcontains "good condition"]]`)
	prof := profile.MustParseProfile(`
kor k1: x.tag = car & y.tag = car & ftcontains(x, "best bid") => x < y
kor k2: x.tag = car & y.tag = car & ftcontains(x, "NYC") => x < y
`)
	resp, err := c.Search(q, prof, 10, plan.Push)
	if err != nil {
		t.Fatal(err)
	}
	if resp.DocsSearched != 4 {
		t.Errorf("DocsSearched = %d", resp.DocsSearched)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("results = %+v", resp.Results)
	}
	// d4 has both KOR phrases -> highest K -> first; d3 never matches.
	if resp.Results[0].DocName != "d4" {
		t.Errorf("d4 should rank first: %+v", resp.Results)
	}
	for _, r := range resp.Results {
		if r.DocName == "d3" {
			t.Errorf("d3 must not match")
		}
		if r.Path == "" || r.Snippet == "" {
			t.Errorf("missing metadata: %+v", r)
		}
	}
}

func TestCorpusTopKCut(t *testing.T) {
	c := testCorpus(t)
	q := tpq.MustParse(`//car`)
	resp, err := c.Search(q, nil, 2, plan.Push)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 2 {
		t.Errorf("k=2 cut failed: %d results", len(resp.Results))
	}
}

func TestCorpusProfileRewriteSharedAcrossDocs(t *testing.T) {
	c := testCorpus(t)
	q := tpq.MustParse(`//car[./description[. ftcontains "good condition" and . ftcontains "best bid"]]`)
	prof := profile.MustParseProfile(`
sr s priority 1: if pc(car, description) & ftcontains(description, "good condition") then remove ftcontains(description, "best bid")
`)
	resp, err := c.Search(q, prof, 10, plan.Push)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.AppliedSRs) != 1 {
		t.Fatalf("applied = %v", resp.AppliedSRs)
	}
	// Without the profile only d2/d4 match; the rule broadens to d1 too.
	if len(resp.Results) != 3 {
		t.Fatalf("broadening across corpus failed: %+v", resp.Results)
	}
	// Cars that do satisfy the demoted predicate still rank higher.
	if resp.Results[len(resp.Results)-1].DocName != "d1" {
		t.Errorf("d1 (no best bid) should rank last: %+v", resp.Results)
	}
}

func TestCorpusRejectsAmbiguousProfile(t *testing.T) {
	c := testCorpus(t)
	prof := profile.MustParseProfile(`
vor a: x.tag = car & y.tag = car & x.color = "red" & y.color != "red" => x < y
vor b: x.tag = car & y.tag = car & x.price < y.price => x < y
`)
	_, err := c.Search(tpq.MustParse(`//car`), prof, 5, plan.Push)
	if err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Fatalf("err = %v", err)
	}
}

func TestCorpusConcurrentSearches(t *testing.T) {
	c := testCorpus(t)
	q := tpq.MustParse(`//car[./description[. ftcontains "good condition"]]`)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := c.Search(q, nil, 5, plan.Push)
			if err != nil || len(resp.Results) != 3 {
				t.Errorf("concurrent search: %v, %d results", err, len(resp.Results))
			}
		}()
	}
	wg.Wait()
}

func TestCorpusReplaceDocument(t *testing.T) {
	c := testCorpus(t)
	if err := c.AddXML("d1", carDoc("black", "completely different", 100)); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 4 {
		t.Errorf("replace must not grow the corpus: %d", c.Len())
	}
	resp, err := c.Search(tpq.MustParse(`//car[./description[. ftcontains "good condition"]]`), nil, 10, plan.Push)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range resp.Results {
		if r.DocName == "d1" {
			t.Errorf("stale d1 content matched: %+v", r)
		}
	}
}

func TestCorpusManyDocsParallel(t *testing.T) {
	c := New(text.Pipeline{})
	for i := 0; i < 100; i++ {
		desc := "ordinary listing"
		if i%7 == 0 {
			desc = "good condition gem"
		}
		if err := c.AddXML(fmt.Sprintf("doc%03d", i), carDoc("red", desc, 100+i)); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := c.Search(tpq.MustParse(`//car[./description[. ftcontains "good condition"]]`), nil, 50, plan.Push)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 15 { // ceil(100/7)
		t.Errorf("results = %d, want 15", len(resp.Results))
	}
}
