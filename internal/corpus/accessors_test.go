// Coverage for the snapshot/entry accessor surface and the
// SearchContext argument contract — the pieces the serving layer leans
// on when it threads one snapshot through validation, cache-key
// derivation and execution.
package corpus

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/plan"
	"repro/internal/tpq"
)

func TestEntryAndSnapshotAccessors(t *testing.T) {
	c := testCorpus(t)
	snap := c.Snapshot()

	names := snap.Names()
	if len(names) != 4 {
		t.Fatalf("snapshot names = %v", names)
	}
	if got := c.Names(); len(got) != 4 {
		t.Fatalf("corpus names = %v", got)
	}
	// Names returns a copy: mutating it must not corrupt the snapshot.
	names[0] = "clobbered"
	if snap.Names()[0] == "clobbered" {
		t.Fatal("Names aliases the snapshot's backing array")
	}

	e, ok := snap.Entry("d1")
	if !ok {
		t.Fatal("d1 missing")
	}
	if e.Name() != "d1" {
		t.Errorf("Name = %q", e.Name())
	}
	if e.Document() == nil || e.Index() == nil {
		t.Error("entry document/index not populated")
	}
	if e.Generation() == 0 || e.Generation() > snap.Generation() {
		t.Errorf("entry gen %d outside (0, snapshot gen %d]", e.Generation(), snap.Generation())
	}

	if idx, ok := c.Index("d1"); !ok || idx != e.Index() {
		t.Error("Corpus.Index(d1) does not return the entry's index")
	}
	if _, ok := c.Index("nope"); ok {
		t.Error("Corpus.Index(nope) = true")
	}
}

func TestSearchContextArgumentContract(t *testing.T) {
	c := testCorpus(t)
	q := tpq.MustParse(`//car`)

	if _, err := c.SearchContext(context.Background(), nil, nil, 5, plan.Push); err == nil {
		t.Error("nil query accepted")
	}
	if _, err := c.SearchContext(context.Background(), q, nil, -1, plan.Push); err == nil {
		t.Error("negative k accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.SearchContext(ctx, q, nil, 5, plan.Push); err == nil {
		t.Error("canceled context returned a merge instead of ctx.Err")
	}
}

// denyBudget never grants a helper token; countBudget grants all and
// counts balanced releases.
type denyBudget struct{}

func (denyBudget) TryAcquire() bool { return false }
func (denyBudget) Release()         { panic("release without acquire") }

type countBudget struct{ acquired, released atomic.Int64 }

func (b *countBudget) TryAcquire() bool { b.acquired.Add(1); return true }
func (b *countBudget) Release()         { b.released.Add(1) }

func TestSetBudgetGatesFanOutHelpers(t *testing.T) {
	q := tpq.MustParse(`//car[./description[. ftcontains "good condition"]]`)

	// A budget that denies every token: the caller's own goroutine still
	// drains the whole fan-out, so answers are unchanged.
	c := testCorpus(t)
	c.SetBudget(denyBudget{})
	resp, err := c.Search(q, nil, 10, plan.Push)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 || resp.DocsSearched != 4 {
		t.Fatalf("denied-budget search: %d results over %d docs", len(resp.Results), resp.DocsSearched)
	}

	// A granting budget: every acquired token is released.
	c2 := testCorpus(t)
	b := &countBudget{}
	c2.SetBudget(b)
	if _, err := c2.Search(q, nil, 10, plan.Push); err != nil {
		t.Fatal(err)
	}
	if b.acquired.Load() == 0 {
		t.Error("granting budget was never consulted")
	}
	if b.acquired.Load() != b.released.Load() {
		t.Errorf("budget leak: %d acquired, %d released", b.acquired.Load(), b.released.Load())
	}
}

func TestClip(t *testing.T) {
	if got := clip("short", 90); got != "short" {
		t.Errorf("clip(short) = %q", got)
	}
	long := strings.Repeat("x", 120)
	if got := clip(long, 90); len(got) <= 90 || !strings.HasSuffix(got, "…") {
		t.Errorf("clip(long) = %q", got)
	}
}
