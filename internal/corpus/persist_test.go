package corpus

import (
	"bytes"
	"testing"

	"repro/internal/plan"
	"repro/internal/tpq"
)

func TestCorpusSaveLoadRoundTrip(t *testing.T) {
	c := testCorpus(t)
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	c2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if c2.Len() != c.Len() {
		t.Fatalf("Len = %d vs %d", c2.Len(), c.Len())
	}
	q := tpq.MustParse(`//car[./description[. ftcontains "good condition"]]`)
	r1, err := c.Search(q, nil, 10, plan.Push)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c2.Search(q, nil, 10, plan.Push)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Results) != len(r2.Results) {
		t.Fatalf("results differ: %d vs %d", len(r1.Results), len(r2.Results))
	}
	for i := range r1.Results {
		a, b := r1.Results[i], r2.Results[i]
		if a.DocName != b.DocName || a.Node != b.Node || a.S != b.S || a.K != b.K {
			t.Errorf("result %d differs: %+v vs %+v", i, a, b)
		}
	}
}

func TestCorpusLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("nope"))); err == nil {
		t.Errorf("garbage must fail")
	}
	// Truncated after the header.
	c := testCorpus(t)
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bytes.NewReader(buf.Bytes()[:40])); err == nil {
		t.Errorf("truncated snapshot must fail")
	}
}
