package corpus

import (
	"context"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/plan"
	"repro/internal/profile"
	"repro/internal/text"
	"repro/internal/tpq"
)

func TestShardNamesCoversAndIsDeterministic(t *testing.T) {
	names := make([]string, 50)
	for i := range names {
		names[i] = fmt.Sprintf("doc-%02d", i)
	}
	for _, n := range []int{1, 2, 3, 8, 16} {
		shards := ShardNames(names, n)
		if len(shards) != n {
			t.Fatalf("n=%d: got %d shards", n, len(shards))
		}
		seen := map[string]int{}
		for i, sh := range shards {
			for _, name := range sh {
				if prev, dup := seen[name]; dup {
					t.Fatalf("n=%d: %q on shards %d and %d", n, name, prev, i)
				}
				seen[name] = i
			}
		}
		if len(seen) != len(names) {
			t.Fatalf("n=%d: %d of %d names assigned", n, len(seen), len(names))
		}
		// Determinism: a second call produces the identical partition.
		if again := ShardNames(names, n); !reflect.DeepEqual(shards, again) {
			t.Fatalf("n=%d: partition not deterministic", n)
		}
	}
}

func TestShardNamesEdgeCases(t *testing.T) {
	// n < 1 falls back to a single shard holding everything.
	shards := ShardNames([]string{"a", "b"}, 0)
	if len(shards) != 1 || len(shards[0]) != 2 {
		t.Fatalf("n=0: %+v", shards)
	}
	// n == 1 preserves order and copies the slice.
	names := []string{"z", "a", "m"}
	shards = ShardNames(names, 1)
	if !reflect.DeepEqual(shards[0], names) {
		t.Fatalf("n=1 order not preserved: %+v", shards[0])
	}
	shards[0][0] = "mutated"
	if names[0] != "z" {
		t.Fatal("n=1 aliases the input slice")
	}
	// Empty input: n empty shards.
	for _, sh := range ShardNames(nil, 3) {
		if len(sh) != 0 {
			t.Fatalf("empty input produced %+v", sh)
		}
	}
}

// TestShardNamesAssignmentIsPerName: a document's shard depends only on
// (name, n) — removing other documents never moves the rest.
func TestShardNamesAssignmentIsPerName(t *testing.T) {
	names := make([]string, 30)
	for i := range names {
		names[i] = fmt.Sprintf("doc-%02d", i)
	}
	const n = 4
	full := map[string]int{}
	for i, sh := range ShardNames(names, n) {
		for _, name := range sh {
			full[name] = i
		}
	}
	subset := names[:10]
	for i, sh := range ShardNames(subset, n) {
		for _, name := range sh {
			if full[name] != i {
				t.Fatalf("%q moved from shard %d to %d when other docs left", name, full[name], i)
			}
		}
	}
}

// TestShardNamesStability: growing the ring from n to n+1 shards moves
// only a bounded fraction of names — the consistent-hashing point.
func TestShardNamesStability(t *testing.T) {
	names := make([]string, 200)
	for i := range names {
		names[i] = fmt.Sprintf("doc-%03d", i)
	}
	assign := func(n int) map[string]int {
		m := map[string]int{}
		for i, sh := range ShardNames(names, n) {
			for _, name := range sh {
				m[name] = i
			}
		}
		return m
	}
	before, after := assign(4), assign(5)
	moved := 0
	for name, sh := range before {
		if after[name] != sh {
			moved++
		}
	}
	// Ideal is 1/5 of the names; vnode imbalance allows slack, but well
	// under half moving is what distinguishes consistent hashing from
	// mod-N rehashing (which would move ~4/5).
	if moved > len(names)/2 {
		t.Fatalf("%d of %d names moved going 4→5 shards", moved, len(names))
	}
}

// shardTestCorpus is testCorpus with more documents, so every shard
// count in the differential actually receives work.
func shardTestCorpus(t *testing.T) *Corpus {
	t.Helper()
	c := New(text.Pipeline{})
	descs := []string{
		"good condition, city car",
		"good condition and best bid welcome",
		"rusty but cheap",
		"good condition, best bid, NYC pickup",
		"best bid, low mileage, good condition",
		"good condition family car",
		"needs work",
		"good condition, NYC, one owner",
	}
	colors := []string{"red", "blue", "green", "red", "blue", "green", "red", "blue"}
	for i, d := range descs {
		name := fmt.Sprintf("doc-%d", i)
		if err := c.AddXML(name, carDoc(colors[i], d, 500+100*i)); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// TestSearchShardedMatchesUnsharded is the equivalence pin: for any
// shard count, a clean (non-degraded) scatter-gather returns exactly
// what the unsharded path returns — same answers, same order, same
// metadata.
func TestSearchShardedMatchesUnsharded(t *testing.T) {
	c := shardTestCorpus(t)
	q := tpq.MustParse(`//car[./description[. ftcontains "good condition"]]`)
	prof := profile.MustParseProfile(`
kor k1: x.tag = car & y.tag = car & ftcontains(x, "best bid") => x < y
kor k2: x.tag = car & y.tag = car & ftcontains(x, "NYC") => x < y
`)
	snap := c.Snapshot()
	for _, k := range []int{2, 10} {
		want, err := snap.SearchContext(context.Background(), q, prof, k, plan.Push)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range []int{2, 3, 8} {
			got, err := snap.SearchSharded(context.Background(), q, prof, k, plan.Push, ShardOptions{Shards: n})
			if err != nil {
				t.Fatalf("shards=%d k=%d: %v", n, k, err)
			}
			if got.Degraded || len(got.TimedOutShards) != 0 {
				t.Fatalf("shards=%d k=%d: degraded without a deadline: %+v", n, k, got)
			}
			if !reflect.DeepEqual(got.Results, want.Results) {
				t.Errorf("shards=%d k=%d: results diverge\n got %+v\nwant %+v", n, k, got.Results, want.Results)
			}
			if !reflect.DeepEqual(got.AppliedSRs, want.AppliedSRs) || got.DocsSearched != want.DocsSearched {
				t.Errorf("shards=%d k=%d: metadata diverges: %+v vs %+v", n, k, got.Response, *want)
			}
		}
	}
}

// TestSearchShardedDegrades: a shard held past its carved deadline is
// dropped while the request is alive — partial results, Degraded set,
// the slow shard listed, and the healthy shards' answers intact.
func TestSearchShardedDegrades(t *testing.T) {
	c := shardTestCorpus(t)
	q := tpq.MustParse(`//car[./description[. ftcontains "good condition"]]`)
	snap := c.Snapshot()

	const n = 3
	shards := ShardNames(snap.Names(), n)
	slow := -1
	for i, sh := range shards {
		if len(sh) > 0 {
			slow = i
			break
		}
	}
	if slow < 0 {
		t.Fatal("no non-empty shard to slow down")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	got, err := snap.SearchSharded(ctx, q, nil, 10, plan.Push, ShardOptions{
		Shards:       n,
		DeadlineFrac: 0.2, // shard budget ≈100ms, well under the sleep
		ShardStart: func(shard int) {
			if shard == slow {
				time.Sleep(250 * time.Millisecond)
			}
		},
	})
	if err != nil {
		t.Fatalf("degraded search failed outright: %v", err)
	}
	if !got.Degraded || len(got.TimedOutShards) != 1 || got.TimedOutShards[0] != slow {
		t.Fatalf("degradation report = %+v, want shard %d dropped", got, slow)
	}
	// Healthy shards' documents are all accounted for.
	wantDocs := 0
	for i, sh := range shards {
		if i != slow {
			wantDocs += len(sh)
		}
	}
	if got.DocsSearched != wantDocs {
		t.Errorf("DocsSearched = %d, want %d (healthy shards only)", got.DocsSearched, wantDocs)
	}
	for _, r := range got.Results {
		for _, name := range shards[slow] {
			if r.DocName == name {
				t.Errorf("result from the dropped shard: %+v", r)
			}
		}
	}
}

// TestSearchShardedParentDeathFails: when the request itself dies, the
// fan-out returns the parent's error — never a partial merge.
func TestSearchShardedParentDeathFails(t *testing.T) {
	c := shardTestCorpus(t)
	q := tpq.MustParse(`//car`)
	snap := c.Snapshot()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := snap.SearchSharded(ctx, q, nil, 10, plan.Push, ShardOptions{Shards: 3}); err == nil {
		t.Fatal("canceled parent produced a response")
	}
}

func TestSearchShardedValidation(t *testing.T) {
	c := shardTestCorpus(t)
	snap := c.Snapshot()
	if _, err := snap.SearchSharded(context.Background(), nil, nil, 10, plan.Push, ShardOptions{Shards: 2}); err == nil {
		t.Error("nil query accepted")
	}
	q := tpq.MustParse(`//car`)
	if _, err := snap.SearchSharded(context.Background(), q, nil, -1, plan.Push, ShardOptions{Shards: 2}); err == nil {
		t.Error("negative k accepted")
	}
	// The ambiguity gate fires before any scatter, like SearchContext.
	ambig := profile.MustParseProfile(`
vor w1: x.tag = car & y.tag = car & x.color = "red" & y.color != "red" => x < y
vor w2: x.tag = car & y.tag = car & x.price < y.price => x < y
rank K,V,S
`)
	if _, err := snap.SearchSharded(context.Background(), q, ambig, 10, plan.Push, ShardOptions{Shards: 2}); err == nil {
		t.Error("ambiguous profile accepted")
	}
}
