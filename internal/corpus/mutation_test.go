// Tests for the live-corpus machinery: snapshot isolation under
// mutation, generation-stamped fingerprints, and the library-level
// differential equivalence between a mutated corpus and one rebuilt
// from scratch at the same state.
package corpus

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/plan"
	"repro/internal/text"
	"repro/internal/tpq"
	"repro/internal/xmldoc"
)

func mustParseXML(t testing.TB, src string) *xmldoc.Document {
	t.Helper()
	d, err := xmldoc.ParseString(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return d
}

func TestSnapshotIsolation(t *testing.T) {
	c := testCorpus(t)
	old := c.Snapshot()
	oldGen := old.Generation()

	// Mutate behind the snapshot's back: replace, delete, create.
	c.Put("d1", mustParseXML(t, carDoc("black", "completely different text", 1)))
	if _, ok := c.Delete("d3"); !ok {
		t.Fatal("Delete(d3) = false")
	}
	c.Put("d9", mustParseXML(t, carDoc("white", "brand new arrival", 2)))

	// The old snapshot still serves the pre-mutation view.
	if old.Len() != 4 || old.Generation() != oldGen {
		t.Fatalf("snapshot mutated: len %d gen %d", old.Len(), old.Generation())
	}
	if _, ok := old.Entry("d3"); !ok {
		t.Error("deleted doc vanished from the old snapshot")
	}
	if _, ok := old.Entry("d9"); ok {
		t.Error("new doc leaked into the old snapshot")
	}
	q := tpq.MustParse(`//car[./description[. ftcontains "good condition"]]`)
	oldResp, err := old.SearchContext(context.Background(), q, nil, 10, plan.Push)
	if err != nil {
		t.Fatal(err)
	}
	if oldResp.DocsSearched != 4 {
		t.Fatalf("old snapshot searched %d docs, want 4", oldResp.DocsSearched)
	}
	for _, r := range oldResp.Results {
		if r.DocName == "d9" {
			t.Error("old snapshot returned a post-snapshot document")
		}
	}

	// The corpus view moved on.
	if c.Len() != 4 || c.Generation() != oldGen+3 {
		t.Fatalf("corpus: len %d gen %d, want 4 at gen %d", c.Len(), c.Generation(), oldGen+3)
	}
	newResp, err := c.SearchContext(context.Background(), q, nil, 10, plan.Push)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range newResp.Results {
		if r.DocName == "d1" {
			t.Error("replaced d1 still matches the old content")
		}
	}
}

func TestGenerationStampedFingerprints(t *testing.T) {
	c := New(text.Pipeline{})
	doc := mustParseXML(t, carDoc("red", "stable content", 10))

	m1 := c.Put("n", doc)
	e1, _ := c.Snapshot().Entry("n")
	fp1 := e1.Fingerprint()

	// Re-put byte-identical content: same content hash, new generation,
	// different fingerprint — the old cache key space is retired.
	m2 := c.Put("n", doc)
	e2, _ := c.Snapshot().Entry("n")
	fp2 := e2.Fingerprint()
	if m2.Gen != m1.Gen+1 {
		t.Fatalf("generations: %d then %d", m1.Gen, m2.Gen)
	}
	if fp1 == fp2 {
		t.Fatalf("identical-content re-put kept fingerprint %q; generation stamp missing", fp1)
	}
	wantSuffix1, wantSuffix2 := fmt.Sprintf("@g%d", m1.Gen), fmt.Sprintf("@g%d", m2.Gen)
	if fp1[:len(fp1)-len(wantSuffix1)] != fp2[:len(fp2)-len(wantSuffix2)] {
		t.Fatalf("content hash changed across identical re-puts: %q vs %q", fp1, fp2)
	}

	// The snapshot fingerprint tracks every mutation, including deletes.
	sfp := c.Snapshot().Fingerprint()
	c.Put("m", mustParseXML(t, carDoc("blue", "other", 20)))
	sfp2 := c.Snapshot().Fingerprint()
	if sfp == sfp2 {
		t.Fatal("snapshot fingerprint unchanged by a put")
	}
	if _, ok := c.Delete("m"); !ok {
		t.Fatal("Delete(m) failed")
	}
	sfp3 := c.Snapshot().Fingerprint()
	if sfp3 == sfp2 {
		t.Fatal("snapshot fingerprint unchanged by a delete")
	}
	if sfp3 == sfp {
		t.Fatal("snapshot fingerprint reverted after put+delete; generations must keep it moving forward")
	}

	// Delete of a missing name: no-op, no generation burn.
	gen := c.Generation()
	if _, ok := c.Delete("ghost"); ok {
		t.Fatal("Delete(ghost) = true")
	}
	if c.Generation() != gen {
		t.Fatal("failed delete bumped the generation")
	}
}

// TestCorpusMutateEquivalence: a corpus that mutated its way to a state
// returns the same search results as one built from scratch at that
// state, for a randomized put/delete walk.
func TestCorpusMutateEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	pool := []string{
		carDoc("red", "good condition, city car", 900),
		carDoc("blue", "good condition and best bid welcome", 1200),
		carDoc("green", "rusty but cheap", 300),
		carDoc("red", "good condition, best bid, NYC pickup", 1500),
	}
	names := []string{"a", "b", "c"}
	q := tpq.MustParse(`//car[./description[. ftcontains "good condition"]]`)

	live := New(text.Pipeline{})
	state := map[string]string{}
	var order []string

	for step := 0; step < 12; step++ {
		name := names[rng.Intn(len(names))]
		if _, ok := state[name]; ok && rng.Intn(3) == 0 {
			live.Delete(name)
			delete(state, name)
			for i, n := range order {
				if n == name {
					order = append(order[:i], order[i+1:]...)
					break
				}
			}
		} else {
			src := pool[rng.Intn(len(pool))]
			if err := live.AddXML(name, src); err != nil {
				t.Fatal(err)
			}
			if _, ok := state[name]; !ok {
				order = append(order, name)
			}
			state[name] = src
		}
		if len(state) == 0 {
			continue
		}

		fresh := New(text.Pipeline{})
		for _, n := range order {
			if err := fresh.AddXML(n, state[n]); err != nil {
				t.Fatal(err)
			}
		}
		got, err := live.Search(q, nil, 10, plan.Push)
		if err != nil {
			t.Fatalf("step %d: live: %v", step, err)
		}
		want, err := fresh.Search(q, nil, 10, plan.Push)
		if err != nil {
			t.Fatalf("step %d: fresh: %v", step, err)
		}
		got.Elapsed, want.Elapsed = 0, 0
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("step %d: mutated corpus diverged from rebuilt corpus:\n%+v\nvs\n%+v", step, got, want)
		}
	}
}

func TestPreparedCommitSplitsWork(t *testing.T) {
	c := New(text.Pipeline{})
	p := c.Prepare(mustParseXML(t, carDoc("red", "prepared off-lock", 5)))
	if p.Nodes() == 0 {
		t.Fatal("Prepared reports zero nodes")
	}
	// Nothing visible until Commit.
	if c.Len() != 0 || c.Generation() != 0 {
		t.Fatalf("Prepare mutated the corpus: len %d gen %d", c.Len(), c.Generation())
	}
	mut := c.Commit("p", p)
	if mut.Gen != 1 || !mut.Created || mut.Op != "put" || mut.Nodes != p.Nodes() {
		t.Fatalf("Commit mutation = %+v", mut)
	}
	if c.Len() != 1 {
		t.Fatalf("Len after Commit = %d", c.Len())
	}
}
