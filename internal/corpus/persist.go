package corpus

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/index"
	"repro/internal/text"
	"repro/internal/xmldoc"
)

// corpusHeader leads a corpus snapshot.
type corpusHeader struct {
	Version int
	Pipe    text.Pipeline
	Names   []string
}

const persistVersion = 1

// Save writes the whole corpus (documents + indexes) as one binary
// snapshot, so a collection indexed once can be reopened instantly.
// The write is taken from one atomic snapshot: mutations landing
// mid-save do not tear the output.
func (c *Corpus) Save(w io.Writer) error {
	snap := c.Snapshot()
	enc := gob.NewEncoder(w)
	if err := enc.Encode(corpusHeader{
		Version: persistVersion,
		Pipe:    c.pipe,
		Names:   snap.names,
	}); err != nil {
		return fmt.Errorf("corpus: save header: %w", err)
	}
	for _, name := range snap.names {
		e := snap.entries[name]
		if err := e.doc.Save(w); err != nil {
			return fmt.Errorf("corpus: save %s: %w", name, err)
		}
		if err := e.idx.Save(w); err != nil {
			return fmt.Errorf("corpus: save %s index: %w", name, err)
		}
	}
	return nil
}

// Load reads a corpus snapshot written by Save. Restored entries are
// stamped with fresh generations (1..n in saved order); their content
// fingerprints are computed lazily on first use, so loading does not
// pay a corpus-sized hashing bill up front.
func Load(r io.Reader) (*Corpus, error) {
	var h corpusHeader
	if err := gob.NewDecoder(r).Decode(&h); err != nil {
		return nil, fmt.Errorf("corpus: load header: %w", err)
	}
	if h.Version != persistVersion {
		return nil, fmt.Errorf("corpus: load: unsupported snapshot version %d", h.Version)
	}
	c := New(h.Pipe)
	for _, name := range h.Names {
		doc, err := xmldoc.Load(r)
		if err != nil {
			return nil, fmt.Errorf("corpus: load %s: %w", name, err)
		}
		ix, err := index.Load(r, doc)
		if err != nil {
			return nil, fmt.Errorf("corpus: load %s index: %w", name, err)
		}
		// Commit without re-indexing or re-hashing: the index is already
		// built, and the content fingerprint fills in lazily.
		c.Commit(name, &Prepared{doc: doc, ix: ix})
	}
	return c, nil
}
