package corpus

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/index"
	"repro/internal/text"
	"repro/internal/xmldoc"
)

// corpusHeader leads a corpus snapshot.
type corpusHeader struct {
	Version int
	Pipe    text.Pipeline
	Names   []string
}

const persistVersion = 1

// Save writes the whole corpus (documents + indexes) as one binary
// snapshot, so a collection indexed once can be reopened instantly.
func (c *Corpus) Save(w io.Writer) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	enc := gob.NewEncoder(w)
	if err := enc.Encode(corpusHeader{
		Version: persistVersion,
		Pipe:    c.pipe,
		Names:   c.names,
	}); err != nil {
		return fmt.Errorf("corpus: save header: %w", err)
	}
	for _, name := range c.names {
		if err := c.docs[name].Save(w); err != nil {
			return fmt.Errorf("corpus: save %s: %w", name, err)
		}
		if err := c.idx[name].Save(w); err != nil {
			return fmt.Errorf("corpus: save %s index: %w", name, err)
		}
	}
	return nil
}

// Load reads a corpus snapshot written by Save.
func Load(r io.Reader) (*Corpus, error) {
	var h corpusHeader
	if err := gob.NewDecoder(r).Decode(&h); err != nil {
		return nil, fmt.Errorf("corpus: load header: %w", err)
	}
	if h.Version != persistVersion {
		return nil, fmt.Errorf("corpus: load: unsupported snapshot version %d", h.Version)
	}
	c := New(h.Pipe)
	for _, name := range h.Names {
		doc, err := xmldoc.Load(r)
		if err != nil {
			return nil, fmt.Errorf("corpus: load %s: %w", name, err)
		}
		ix, err := index.Load(r, doc)
		if err != nil {
			return nil, fmt.Errorf("corpus: load %s index: %w", name, err)
		}
		c.mu.Lock()
		c.names = append(c.names, name)
		c.docs[name] = doc
		c.idx[name] = ix
		c.mu.Unlock()
	}
	return c, nil
}
