// Command inexgen writes the synthetic INEX-style collection of one of
// the paper's 8 topics (Section 7.1), plus its topic file and derived
// profile, for inspection or external experimentation:
//
//	inexgen -topic 131 -o collection.xml
//	inexgen -topic 131 -what profile
//	inexgen -list
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/inex"
)

func main() {
	topicID := flag.Int("topic", 131, "topic id (130, 131, 132, 140, 141, 142, 145, 151)")
	seed := flag.Int64("seed", 42, "generator seed")
	what := flag.String("what", "collection", "output: collection | profile | assessments")
	out := flag.String("o", "-", "output file ('-' for stdout)")
	list := flag.Bool("list", false, "list the topics and exit")
	flag.Parse()

	if *list {
		for _, spec := range inex.Topics() {
			fmt.Printf("%d  %-45s  pool=%d  phrase=%q\n",
				spec.ID, spec.Title, spec.Assessed(), spec.Phrase)
		}
		return
	}

	var spec inex.Spec
	found := false
	for _, s := range inex.Topics() {
		if s.ID == *topicID {
			spec, found = s, true
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "inexgen: unknown topic %d (use -list)\n", *topicID)
		os.Exit(2)
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	defer bw.Flush()

	switch *what {
	case "collection":
		doc, _ := inex.BuildCollection(spec, *seed)
		fail(doc.WriteXML(bw, "  "))
	case "profile":
		for _, tp := range spec.Types {
			prof := inex.TopicProfile(spec, tp.Tag)
			fmt.Fprintf(bw, "# element type %s\n", tp.Tag)
			for _, sr := range prof.SRs {
				fmt.Fprintf(bw, "sr %s\n", sr)
			}
			for _, k := range prof.KORs {
				fmt.Fprintf(bw, "kor %s\n", k)
			}
			fmt.Fprintln(bw)
		}
	case "assessments":
		doc, graded := inex.BuildCollectionGraded(spec, *seed)
		for _, a := range graded {
			fmt.Fprintf(bw, "node=%d path=%s relevance=%d coverage=%c\n",
				a.Node, doc.Path(a.Node), a.Relevance, a.Coverage)
		}
	default:
		fmt.Fprintf(os.Stderr, "inexgen: unknown -what %q\n", *what)
		os.Exit(2)
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "inexgen:", err)
		os.Exit(1)
	}
}
