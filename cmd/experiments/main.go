// Command experiments regenerates the paper's evaluation artifacts:
//
//	experiments -exp table1            # Table 1 (INEX effectiveness)
//	experiments -exp table1-baseline   # same topics without profiles
//	experiments -exp fig6              # Fig. 6 (Push plan scaling)
//	experiments -exp fig7              # Fig. 7 (four plans, 10MB doc)
//	experiments -exp scorers           # Table 1 under tf-idf / BM25 / boolean
//	experiments -exp graded            # INEX strict/generalized quantizations
//	experiments -exp weights           # Section 8 weighted fine-tuning sweep
//	experiments -exp extra-queries     # Section 7.2's "two other queries"
//	experiments -exp ablation          # Section 7.2 design observations
//	experiments -exp parallel          # worker-count sweep (DESIGN.md §9)
//	experiments -exp all
//
// -quick shrinks the performance-experiment inputs for fast smoke runs;
// -par sets the fig6/fig7 plan-execution worker count.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/index"
	"repro/internal/inex"
	"repro/internal/plan"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1 | table1-baseline | fig6 | fig7 | scorers | graded | weights | extra-queries | ablation | parallel | all")
	seed := flag.Int64("seed", 42, "generator seed")
	quick := flag.Bool("quick", false, "shrink performance experiments for a fast run")
	k := flag.Int("k", 10, "top-k result size for performance experiments")
	par := flag.Int("par", 1, "plan-execution workers for fig6/fig7 (0 = GOMAXPROCS, 1 = sequential)")
	accessName := flag.String("access", "auto", "candidate access path for fig6/fig7: auto | scan | twigjoin")
	flag.Parse()

	access, err := plan.ParseAccessPath(*accessName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(2)
	}

	run := func(name string, f func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
	}

	run("table1", func() error {
		rows, err := inex.RunTable1(*seed, true)
		if err != nil {
			return err
		}
		fmt.Println("== Table 1 (measured, personalized) ==")
		fmt.Println(inex.FormatTable(rows))
		fmt.Println("== Table 1 (paper) ==")
		fmt.Println(inex.FormatTable(inex.PaperTable1))
		return nil
	})

	run("table1-baseline", func() error {
		rows, err := inex.RunTable1(*seed, false)
		if err != nil {
			return err
		}
		fmt.Println("== Table 1 topics without profile enforcement (baseline) ==")
		fmt.Println(inex.FormatTable(rows))
		return nil
	})

	run("fig6", func() error {
		cfg := experiments.Fig6Config{Seed: *seed, K: *k, Parallelism: *par, Access: access}
		if *quick {
			cfg.Sizes = []int{101 * 1024, 212 * 1024, 468 * 1024}
			cfg.Trials = 1
		}
		rows := experiments.RunFig6(cfg)
		fmt.Println("== Fig. 6 (measured) ==")
		fmt.Println(experiments.FormatFig6(rows))
		if last := rows[len(rows)-1]; len(last.Ops) > 0 {
			fmt.Println(experiments.FormatOpBreakdown(
				fmt.Sprintf("Push plan, %s, %d KORs", last.SizeLabel, last.NumKORs), last.Ops))
		}
		return nil
	})

	run("fig7", func() error {
		cfg := experiments.Fig7Config{Seed: *seed, K: *k, Parallelism: *par, Access: access}
		if *quick {
			cfg.SizeBytes = 1024 * 1024
			cfg.Trials = 1
		}
		rows := experiments.RunFig7(cfg)
		fmt.Println("== Fig. 7 (measured) ==")
		fmt.Println(experiments.FormatFig7(rows))
		maxKOR := 0
		for _, r := range rows {
			if r.NumKORs > maxKOR {
				maxKOR = r.NumKORs
			}
		}
		for _, r := range rows {
			if r.NumKORs == maxKOR && len(r.Ops) > 0 {
				fmt.Println(experiments.FormatOpBreakdown(
					fmt.Sprintf("%s, %d KORs", r.Strategy, r.NumKORs), r.Ops))
			}
		}
		return nil
	})

	run("scorers", func() error {
		fmt.Println("== Scorer study ==")
		fmt.Println("Personalization is orthogonal to the base scorer S: swapping")
		fmt.Println("tf-idf for BM25 or boolean retrieval leaves the profile win intact.")
		fmt.Println("Total missed across the 8 topics, by base scorer:")
		fmt.Println("Scorer    baseline  personalized")
		for _, sc := range []struct {
			name   string
			scorer index.Scorer
		}{
			{"tfidf", index.TFIDFScorer{}},
			{"bm25", index.BM25Scorer{}},
			{"boolean", index.BooleanScorer{}},
		} {
			base, err := inex.RunTable1Scored(*seed, false, sc.scorer)
			if err != nil {
				return err
			}
			pers, err := inex.RunTable1Scored(*seed, true, sc.scorer)
			if err != nil {
				return err
			}
			bm, pm := 0, 0
			for i := range base {
				bm += base[i].Missed
				pm += pers[i].Missed
			}
			fmt.Printf("%-9s %-9d %d\n", sc.name, bm, pm)
		}
		fmt.Println()
		return nil
	})

	run("graded", func() error {
		fmt.Println("== Graded assessments (INEX relevance/coverage quantizations) ==")
		for _, q := range []struct {
			name  string
			quant inex.Quantization
		}{{"strict", inex.Strict}, {"generalized", inex.Generalized}} {
			rows, err := inex.RunQuantized(*seed, q.quant)
			if err != nil {
				return err
			}
			fmt.Println(inex.FormatGraded(q.name, rows))
		}
		return nil
	})

	run("weights", func() error {
		fmt.Println("== Weight study (Section 8 future work) ==")
		for _, spec := range inex.Topics() {
			if spec.ID != 131 && spec.ID != 140 {
				continue
			}
			rows, err := inex.RunWeightStudy(spec, *seed, 3, []float64{0.05, 0.25, 1, 4})
			if err != nil {
				return err
			}
			fmt.Println(inex.FormatWeightStudy(spec, rows))
		}
		return nil
	})

	run("extra-queries", func() error {
		size := 5*1024*1024 + 700*1024
		if *quick {
			size = 512 * 1024
		}
		rows := experiments.RunExtraQueries(*seed, size, *k, 3)
		fmt.Println("== Other queries (Section 7.2) ==")
		fmt.Println(experiments.FormatExtraQueries(rows))
		return nil
	})

	run("ablation", func() error {
		size := 5 * 1024 * 1024
		if *quick {
			size = 512 * 1024
		}
		rows := experiments.RunAblations(*seed, size, *k, 3)
		fmt.Println("== Ablations ==")
		fmt.Println(experiments.FormatAblations(rows))
		return nil
	})

	run("parallel", func() error {
		size := 10 * 1024 * 1024
		if *quick {
			size = 1024 * 1024
		}
		rows := experiments.RunParallel(*seed, size, *k, 3, nil)
		fmt.Println("== Parallel execution (DESIGN.md §9) ==")
		fmt.Println(experiments.FormatParallel(rows))
		return nil
	})
}
