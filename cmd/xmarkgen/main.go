// Command xmarkgen writes an XMark-style auction-site document, the
// synthetic substrate of the paper's performance study (Section 7.2):
//
//	xmarkgen -size 1M -seed 42 -o xmark-1m.xml
//	xmarkgen -persons 500 -o small.xml
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/xmark"
)

func main() {
	sizeStr := flag.String("size", "", "target size, e.g. 101K, 5.7M, 10M")
	persons := flag.Int("persons", 0, "alternatively: exact number of persons")
	seed := flag.Int64("seed", 42, "generator seed")
	yes := flag.Float64("business-yes", 0.5, "fraction of persons with business=Yes")
	out := flag.String("o", "-", "output file ('-' for stdout)")
	flag.Parse()

	cfg := xmark.Config{Seed: *seed, PersonBusinessYes: *yes}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	defer bw.Flush()

	switch {
	case *persons > 0:
		d := xmark.Generate(cfg, *persons)
		fail(d.WriteXML(bw, " "))
	case *sizeStr != "":
		bytes, err := parseSize(*sizeStr)
		if err != nil {
			fail(err)
		}
		d := xmark.GenerateSized(cfg, bytes)
		fail(d.WriteXML(bw, " "))
	default:
		fmt.Fprintln(os.Stderr, "xmarkgen: need -size or -persons")
		flag.Usage()
		os.Exit(2)
	}
}

func parseSize(s string) (int, error) {
	s = strings.ToUpper(strings.TrimSpace(s))
	mult := 1
	switch {
	case strings.HasSuffix(s, "K"):
		mult, s = 1024, s[:len(s)-1]
	case strings.HasSuffix(s, "M"):
		mult, s = 1024*1024, s[:len(s)-1]
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return int(f * float64(mult)), nil
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "xmarkgen:", err)
		os.Exit(1)
	}
}
