// Command loadgen is the QPS load harness for pimentod: it drives
// /search with either an open-loop Poisson arrival process (-qps) or a
// fixed set of closed-loop clients (-conc), records per-request
// latency, and prints a JSON summary (p50/p90/p99, achieved QPS, status
// counts) to stdout.
//
//	loadgen -addr localhost:8080 -doc xmark -keywords "gold purpose" -qps 200 -duration 10s
//	loadgen -addr localhost:8080 -doc xmark -query '//item' -conc 32 -duration 10s
//
// Open loop is the honest way to measure a server under load: arrivals
// keep coming at the offered rate whether or not earlier requests have
// finished, so queueing delay shows up in the latencies instead of
// being absorbed by the generator (closed-loop coordinated omission).
// Inter-arrival gaps are exponential with a fixed -seed, so a run is
// reproducible.
//
// Every 200-response's ranked results are digested (SHA-256 over the
// normalized "results" array); the summary reports the set of distinct
// digests seen. A scheduler or parallelism change that altered answers
// would show up as digest drift between runs — scripts/loadtest.sh
// compares the digest against a sequential-baseline run.
//
// -max-p99-ms and -max-errors turn the run into a smoke gate: the
// process exits 1 when the bound is exceeded (used by `make ci`).
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

type request struct {
	Doc         string `json:"doc"`
	Query       string `json:"query,omitempty"`
	Keywords    string `json:"keywords,omitempty"`
	Profile     string `json:"profile,omitempty"`
	K           int    `json:"k,omitempty"`
	Parallelism int    `json:"parallelism,omitempty"`
	NoCache     bool   `json:"no_cache,omitempty"`
	TimeoutMS   int    `json:"timeout_ms,omitempty"`
}

// sample is one completed request.
type sample struct {
	latency time.Duration
	status  int
}

// summary is the JSON report printed to stdout.
type summary struct {
	Mode        string         `json:"mode"` // "open" or "closed"
	TargetQPS   float64        `json:"target_qps,omitempty"`
	Conc        int            `json:"conc,omitempty"`
	DurationS   float64        `json:"duration_s"`
	Requests    int            `json:"requests"`
	AchievedQPS float64        `json:"achieved_qps"`
	P50MS       float64        `json:"p50_ms"`
	P90MS       float64        `json:"p90_ms"`
	P99MS       float64        `json:"p99_ms"`
	MaxMS       float64        `json:"max_ms"`
	Status      map[string]int `json:"status"`
	Errors      int            `json:"errors"` // transport errors + non-2xx/4xx-shed
	Shed        int            `json:"shed"`   // 429 + 503: refused by admission, not failures
	Digests     []string       `json:"digests"`
}

func main() {
	addr := flag.String("addr", "localhost:8080", "pimentod host:port")
	doc := flag.String("doc", "xmark", "document name to search")
	query := flag.String("query", "", "TPQ query (mutually additive with -keywords)")
	keywords := flag.String("keywords", "", "keyword search terms")
	profile := flag.String("profile", "", "inline profile text")
	k := flag.Int("k", 10, "top-k")
	par := flag.Int("parallelism", 0, "requested parallelism (0 = auto)")
	noCache := flag.Bool("no-cache", true, "bypass the result cache (measure execution, not cache hits)")
	timeoutMS := flag.Int("timeout-ms", 0, "per-request server-side timeout_ms (0 = server default)")
	qps := flag.Float64("qps", 0, "open-loop offered load in requests/second (0 = closed loop)")
	conc := flag.Int("conc", 8, "closed-loop client count (ignored when -qps > 0)")
	duration := flag.Duration("duration", 10*time.Second, "measurement duration")
	seed := flag.Int64("seed", 1, "RNG seed for the Poisson arrival process")
	maxP99 := flag.Float64("max-p99-ms", 0, "exit 1 if p99 exceeds this many milliseconds (0 disables)")
	maxErrors := flag.Int("max-errors", -1, "exit 1 if errors exceed this count (-1 disables)")
	flag.Parse()

	if *query == "" && *keywords == "" {
		fmt.Fprintln(os.Stderr, "loadgen: one of -query or -keywords is required")
		os.Exit(2)
	}
	body, err := json.Marshal(request{
		Doc: *doc, Query: *query, Keywords: *keywords, Profile: *profile,
		K: *k, Parallelism: *par, NoCache: *noCache, TimeoutMS: *timeoutMS,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(2)
	}
	url := "http://" + strings.TrimPrefix(*addr, "http://") + "/search"

	client := &http.Client{
		Transport: &http.Transport{
			MaxIdleConns:        1024,
			MaxIdleConnsPerHost: 1024,
		},
	}

	var (
		mu      sync.Mutex
		samples []sample
		digests = make(map[string]struct{})
	)
	shoot := func() {
		start := time.Now()
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		lat := time.Since(start)
		if err != nil {
			mu.Lock()
			samples = append(samples, sample{latency: lat, status: 0})
			mu.Unlock()
			return
		}
		payload, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			if d, ok := digest(payload); ok {
				mu.Lock()
				digests[d] = struct{}{}
				mu.Unlock()
			}
		}
		mu.Lock()
		samples = append(samples, sample{latency: lat, status: resp.StatusCode})
		mu.Unlock()
	}

	begin := time.Now()
	var wg sync.WaitGroup
	if *qps > 0 {
		// Open loop: exponential inter-arrival gaps at rate -qps; each
		// arrival gets its own goroutine so a slow server cannot slow the
		// arrival process down (that's the point).
		rng := rand.New(rand.NewSource(*seed))
		deadline := begin.Add(*duration)
		for now := time.Now(); now.Before(deadline); now = time.Now() {
			gap := time.Duration(rng.ExpFloat64() / *qps * float64(time.Second))
			time.Sleep(gap)
			wg.Add(1)
			go func() { defer wg.Done(); shoot() }()
		}
	} else {
		// A closed channel, not time.After: every client must observe the
		// stop signal (a timer channel delivers one value to one reader).
		stop := make(chan struct{})
		time.AfterFunc(*duration, func() { close(stop) })
		for c := 0; c < *conc; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
						shoot()
					}
				}
			}()
		}
	}
	wg.Wait()
	elapsed := time.Since(begin)

	sum := build(samples, digests, elapsed)
	if *qps > 0 {
		sum.Mode, sum.TargetQPS = "open", *qps
	} else {
		sum.Mode, sum.Conc = "closed", *conc
	}
	// Errors: transport failures (status "0") and anything that is
	// neither success nor an admission shed.
	for st, n := range sum.Status {
		switch st {
		case "200", "429", "503":
		default:
			sum.Errors += n
		}
	}
	out, _ := json.MarshalIndent(sum, "", "  ")
	fmt.Println(string(out))

	if *maxP99 > 0 && sum.P99MS > *maxP99 {
		fmt.Fprintf(os.Stderr, "loadgen: p99 %.1fms exceeds bound %.1fms\n", sum.P99MS, *maxP99)
		os.Exit(1)
	}
	if *maxErrors >= 0 && sum.Errors > *maxErrors {
		fmt.Fprintf(os.Stderr, "loadgen: %d errors exceed bound %d\n", sum.Errors, *maxErrors)
		os.Exit(1)
	}
}

// digest canonicalizes a 200 response to its ranked results: the
// "results" array re-marshaled alone, hashed. Volatile fields
// (exec_us, trace, cache age) live outside "results" and are excluded
// by construction.
func digest(payload []byte) (string, bool) {
	var resp struct {
		Results json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(payload, &resp); err != nil {
		return "", false
	}
	var results []any
	if err := json.Unmarshal(resp.Results, &results); err != nil {
		return "", false
	}
	canon, err := json.Marshal(results)
	if err != nil {
		return "", false
	}
	h := sha256.Sum256(canon)
	return hex.EncodeToString(h[:8]), true
}

func build(samples []sample, digests map[string]struct{}, elapsed time.Duration) *summary {
	lats := make([]time.Duration, 0, len(samples))
	status := make(map[string]int)
	shed := 0
	for _, s := range samples {
		status[fmt.Sprintf("%d", s.status)]++
		switch s.status {
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			shed++
		case http.StatusOK:
			lats = append(lats, s.latency) // percentiles over successes only
		}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		i := int(math.Ceil(p/100*float64(len(lats)))) - 1
		if i < 0 {
			i = 0
		}
		return float64(lats[i]) / float64(time.Millisecond)
	}
	var maxMS float64
	if len(lats) > 0 {
		maxMS = float64(lats[len(lats)-1]) / float64(time.Millisecond)
	}
	ds := make([]string, 0, len(digests))
	for d := range digests {
		ds = append(ds, d)
	}
	sort.Strings(ds)
	return &summary{
		DurationS:   elapsed.Seconds(),
		Requests:    len(samples),
		AchievedQPS: float64(len(samples)) / elapsed.Seconds(),
		P50MS:       pct(50),
		P90MS:       pct(90),
		P99MS:       pct(99),
		MaxMS:       maxMS,
		Status:      status,
		Shed:        shed,
		Digests:     ds,
	}
}
