// Command pimento runs a personalized XML search from the command line:
//
//	pimento -doc cars.xml -query '//car[price < 2000]' [-profile prof.txt] [-k 5]
//	pimento -doc cars.xml -query '...' -profile prof.txt -explain
//	pimento vet -profile prof.txt [-query '...'] [-json]
//
// -explain prints the Section 5 static analysis (rule applicability,
// conflicts, application order, the query flock, ambiguity) instead of
// executing the query. The vet subcommand runs the full diagnostics
// suite (see internal/analysis) and exits nonzero when the profile
// carries an error-severity finding.
package main

import (
	"flag"
	"fmt"
	"os"

	pimento "repro"
	"repro/internal/plan"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "vet" {
		runVet(os.Args[2:])
		return
	}
	docPath := flag.String("doc", "", "XML document to search (required)")
	querySrc := flag.String("query", "", "query, e.g. //car[price < 2000]")
	keywords := flag.String("keywords", "", "alternatively: content-only keyword search, e.g. 'data mining'")
	profPath := flag.String("profile", "", "profile file (optional)")
	k := flag.Int("k", 10, "number of answers")
	strat := flag.String("plan", "push", "plan: naive | interleave | interleave-sort | push | push-deep")
	explain := flag.Bool("explain", false, "print the static analysis instead of executing")
	stats := flag.Bool("stats", false, "print per-operator statistics")
	twig := flag.Bool("twig", false, "use the holistic twig access path")
	flag.Parse()

	if *docPath == "" || (*querySrc == "" && *keywords == "") {
		flag.Usage()
		os.Exit(2)
	}

	var q *pimento.Query
	var err error
	if *querySrc != "" {
		q, err = pimento.ParseQuery(*querySrc)
	} else {
		q, err = pimento.KeywordQuery(*keywords)
	}
	fatal("query", err)

	var prof *pimento.Profile
	if *profPath != "" {
		src, err := os.ReadFile(*profPath)
		fatal("profile", err)
		prof, err = pimento.ParseProfile(string(src))
		fatal("profile", err)
	}

	if *explain {
		if prof == nil {
			fatal("explain", fmt.Errorf("needs -profile"))
		}
		pa := pimento.Analyze(prof, q)
		if pa.ConflictErr != nil {
			fmt.Println("conflicts:", pa.ConflictErr)
		} else {
			fmt.Println("applied rules:", pa.Applied)
			for i, fq := range pa.Flock {
				fmt.Printf("flock[%d]: %s\n", i, fq)
			}
		}
		if pa.Ambiguity.Ambiguous {
			fmt.Println("ambiguous ordering rules:", pa.Ambiguity.Cycle)
			fmt.Println("  ", pa.Ambiguity.Suggestion)
		} else {
			fmt.Println("ordering rules: unambiguous")
		}
		return
	}

	f, err := os.Open(*docPath)
	fatal("doc", err)
	defer f.Close()
	eng, err := pimento.Open(f)
	fatal("doc", err)

	searchOpts := []pimento.Option{
		pimento.WithK(*k), pimento.WithStrategy(parseStrategy(*strat)),
	}
	if *twig {
		searchOpts = append(searchOpts, pimento.WithTwigAccess())
	}
	resp, err := eng.Search(q, prof, searchOpts...)
	fatal("search", err)

	if len(resp.AppliedSRs) > 0 {
		fmt.Printf("applied scoping rules: %v\n", resp.AppliedSRs)
		fmt.Printf("rewritten query: %s\n", resp.EncodedQuery)
	}
	for i, r := range resp.Results {
		fmt.Printf("%2d. %-24s S=%.3f K=%.3f  %s\n", i+1, r.Path, r.S, r.K, r.Snippet)
	}
	fmt.Printf("(%d answers in %v, %d pruned)\n",
		len(resp.Results), resp.Elapsed, resp.TotalPruned)
	if *stats {
		for _, s := range resp.Stats {
			fmt.Printf("  %-45s in=%-6d out=%-6d pruned=%d\n", s.Name, s.In, s.Out, s.Pruned)
		}
	}
}

func parseStrategy(s string) pimento.Strategy {
	switch s {
	case "naive":
		return pimento.Naive
	case "interleave":
		return pimento.InterleaveNoSort
	case "interleave-sort":
		return pimento.InterleaveSort
	case "push-deep":
		return pimento.PushDeep
	case "push", "":
		return pimento.Push
	}
	fatal("plan", fmt.Errorf("unknown plan %q", s))
	return plan.Push
}

func fatal(what string, err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "pimento: %s: %v\n", what, err)
		os.Exit(1)
	}
}
