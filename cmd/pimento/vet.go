// The vet subcommand: run the profile/query static-analysis suite and
// print its diagnostics.
//
//	pimento vet -profile prof.txt [-query '//car[...]'] [-json]
//
// Exit status: 0 when no error-severity diagnostic was found (the
// profile is accepted by Search), 1 when at least one error was found,
// 2 on usage mistakes or unreadable inputs. Output is byte-stable:
// diagnostics are sorted canonically and cycle witnesses carry their
// canonical rotation, so repeated runs produce identical bytes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	pimento "repro"
	"repro/internal/analysis"
)

// vetPayload mirrors the POST /lint response shape.
type vetPayload struct {
	Clean       bool                  `json:"clean"`
	Errors      int                   `json:"errors"`
	Diagnostics []analysis.Diagnostic `json:"diagnostics"`
	Counts      map[string]int        `json:"counts,omitempty"`
}

func runVet(args []string) {
	fs := flag.NewFlagSet("pimento vet", flag.ExitOnError)
	profPath := fs.String("profile", "", "profile file to vet (required)")
	querySrc := fs.String("query", "", "optional query enabling the query-scoped checks (conflict cycles, unsatisfiable rewrites, inert ordering rules)")
	jsonOut := fs.Bool("json", false, "emit the diagnostics as JSON (the POST /lint shape)")
	fs.Parse(args)

	if *profPath == "" {
		fs.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(*profPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pimento vet: %v\n", err)
		os.Exit(2)
	}

	var ds []analysis.Diagnostic
	prof, perr := pimento.ParseProfile(string(src))
	if perr != nil {
		// A duplicate rule identifier is a finding, not a usage mistake:
		// report it as the P001 diagnostic the parser's error cites.
		if strings.Contains(perr.Error(), "["+analysis.DiagDuplicateName+"]") {
			ds = []analysis.Diagnostic{{
				ID:       analysis.DiagDuplicateName,
				Severity: analysis.SevError,
				Message:  perr.Error(),
			}}
		} else {
			fmt.Fprintf(os.Stderr, "pimento vet: %v\n", perr)
			os.Exit(2)
		}
	} else {
		var q *pimento.Query
		if *querySrc != "" {
			if q, err = pimento.ParseQuery(*querySrc); err != nil {
				fmt.Fprintf(os.Stderr, "pimento vet: query: %v\n", err)
				os.Exit(2)
			}
		}
		ds = pimento.Vet(prof, q)
	}

	nErr := analysis.ErrorCount(ds)
	if *jsonOut {
		payload := vetPayload{Clean: nErr == 0, Errors: nErr, Diagnostics: ds}
		if ds == nil {
			payload.Diagnostics = []analysis.Diagnostic{}
		}
		if len(ds) > 0 {
			payload.Counts = make(map[string]int)
			for _, d := range ds {
				payload.Counts[d.ID]++
			}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(&payload)
	} else {
		for _, d := range ds {
			fmt.Println(d.String())
			for _, r := range d.Rules {
				fmt.Printf("    at %s\n", r)
			}
		}
		nWarn, nInfo := 0, 0
		for _, d := range ds {
			switch d.Severity {
			case analysis.SevWarn:
				nWarn++
			case analysis.SevInfo:
				nInfo++
			}
		}
		if len(ds) == 0 {
			fmt.Printf("%s: clean\n", *profPath)
		} else {
			fmt.Printf("%s: %d error(s), %d warning(s), %d info\n", *profPath, nErr, nWarn, nInfo)
		}
	}
	if nErr > 0 {
		os.Exit(1)
	}
}
