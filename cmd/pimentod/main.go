// Command pimentod is PIMENTO's HTTP search daemon: it indexes one or
// more XML documents and serves personalized search over a JSON API.
//
//	pimentod -addr :8080 -doc cars=cars.xml -doc auction=xmark.xml
//	pimentod -addr :8080 -xmark 512K            # generate a demo document
//
//	curl -s localhost:8080/search -d '{"doc":"cars","query":"//car[price < 2000]","k":5}'
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/statsz
//
// Endpoints: POST /search, POST /explain, POST /lint (profile vet
// diagnostics), PUT/DELETE /docs/{name} (live corpus mutation — the
// body of a PUT is the raw XML document; -max-doc-bytes bounds it),
// GET /docs, GET /watch (long-poll mutation feed; -watch-buffer sizes
// its replay window), GET /healthz, GET /statsz, GET /metrics
// (Prometheus text exposition).
// Per-request deadlines come from the request's timeout_ms field,
// bounded by -timeout; repeated identical requests are answered from a
// single-flight LRU result cache, and profile/query analysis verdicts
// from a shared memoized analysis cache (-analysis-cache). Fresh
// executions are admitted through a bounded worker pool (-pool,
// -pool-queue, -pool-max-wait; DESIGN.md §14) that sheds overload with
// 503/429 + Retry-After instead of oversubscribing the CPU; -pool -1
// restores the legacy unscheduled behavior. -slow-query enables the
// slow-query log; -debug-addr serves net/http/pprof on a separate
// listener for profiling (see `make profile`). SIGINT/SIGTERM drain
// in-flight requests before exit (graceful shutdown).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/plan"
	"repro/internal/server"
	"repro/internal/text"
	"repro/internal/xmark"
	"repro/internal/xmldoc"
)

// docFlags collects repeated -doc name=path (or bare path) arguments.
type docFlags []string

func (d *docFlags) String() string     { return strings.Join(*d, ",") }
func (d *docFlags) Set(s string) error { *d = append(*d, s); return nil }

func main() {
	var docs docFlags
	flag.Var(&docs, "doc", "document to serve, as name=path.xml (repeatable; bare path uses the file stem as name)")
	addr := flag.String("addr", ":8080", "listen address")
	xmarkSize := flag.String("xmark", "", "additionally serve a generated XMark document of ~this size (e.g. 512K, 4M) under the name \"xmark\"")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-request deadline (0 disables)")
	cacheSize := flag.Int("cache", 512, "result cache capacity in entries")
	analysisCacheSize := flag.Int("analysis-cache", 256, "profile/query analysis verdict cache capacity in entries")
	stem := flag.Bool("stem", true, "apply Porter stemming while indexing")
	stopwords := flag.Bool("stopwords", false, "drop English stopwords while indexing")
	access := flag.String("access", "auto", "default candidate access path: auto, scan, or twigjoin (requests override with their \"access\" field)")
	slowQuery := flag.Duration("slow-query", 0, "log queries at least this slow, with plan and per-operator stats (0 disables)")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty disables)")
	pool := flag.Int("pool", 0, "admission scheduler worker count: concurrent search executions (0 = GOMAXPROCS; -1 disables the scheduler — legacy per-request GOMAXPROCS parallelism)")
	poolQueue := flag.Int("pool-queue", 0, "admission waiting-room capacity; beyond it requests are shed with 503 (0 = 64×workers; negative = no waiting room)")
	poolMaxWait := flag.Duration("pool-max-wait", 0, "shed requests queued longer than this with 429 (0 disables the bound)")
	parMinNodes := flag.Int("par-min-nodes", 0, "document node count above which parallelism 0 (auto) is granted intra-query workers (0 = built-in default from BENCH_parallel.json)")
	maxDocBytes := flag.String("max-doc-bytes", "64M", "largest document body PUT /docs/{name} accepts (e.g. 512K, 64M)")
	watchBuffer := flag.Int("watch-buffer", 256, "mutations GET /watch retains for since-cursor replay")
	shards := flag.Int("shards", 1, "consistent-hash partitions fan-out searches scatter over (<2 = unsharded)")
	shardDeadlineFrac := flag.Float64("shard-deadline-frac", 0, "fraction of a request's remaining deadline granted to each fan-out shard, in (0,1] (0 = built-in default; shards past their budget degrade the response instead of failing it)")
	flag.Parse()

	if len(docs) == 0 && *xmarkSize == "" {
		// A document-less start is fine now that the corpus is live:
		// clients populate it with PUT /docs/{name}.
		log.Printf("starting with an empty corpus (populate with PUT /docs/{name})")
	}
	maxDoc, err := parseSize(*maxDocBytes)
	if err != nil || maxDoc <= 0 {
		fmt.Fprintf(os.Stderr, "pimentod: bad -max-doc-bytes %q (want e.g. 512K, 64M)\n", *maxDocBytes)
		os.Exit(2)
	}
	accessPath, err := plan.ParseAccessPath(*access)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pimentod: %v\n", err)
		os.Exit(2)
	}
	if *shardDeadlineFrac < 0 || *shardDeadlineFrac > 1 {
		fmt.Fprintf(os.Stderr, "pimentod: bad -shard-deadline-frac %v (want (0,1], or 0 for the default)\n", *shardDeadlineFrac)
		os.Exit(2)
	}

	srv := server.New(server.Config{
		Pipeline:           text.Pipeline{Stem: *stem, DropStopwords: *stopwords},
		CacheSize:          *cacheSize,
		AnalysisCacheSize:  *analysisCacheSize,
		DefaultTimeout:     *timeout,
		SlowQueryThreshold: *slowQuery,
		DefaultAccess:      accessPath,
		PoolWorkers:        *pool,
		PoolQueue:          *poolQueue,
		PoolMaxWait:        *poolMaxWait,
		ParallelMinNodes:   *parMinNodes,
		MaxDocBytes:        int64(maxDoc),
		WatchBuffer:        *watchBuffer,
		Shards:             *shards,
		ShardDeadlineFrac:  *shardDeadlineFrac,
	})
	defer srv.Close()

	for _, spec := range docs {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			path = spec
			name = strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		}
		f, err := os.Open(path)
		if err != nil {
			log.Fatalf("pimentod: %v", err)
		}
		doc, err := xmldoc.Parse(f)
		f.Close()
		if err != nil {
			log.Fatalf("pimentod: %s: %v", path, err)
		}
		srv.Add(name, doc)
		log.Printf("indexed %s (%d nodes) as %q", path, doc.Len(), name)
	}
	if *xmarkSize != "" {
		n, err := parseSize(*xmarkSize)
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "pimentod: bad -xmark size %q (want e.g. 512K, 4M)\n", *xmarkSize)
			os.Exit(2)
		}
		doc := xmark.GenerateSized(xmark.Config{Seed: 42}, n)
		srv.Add("xmark", doc)
		log.Printf("generated xmark document (%d nodes) as %q", doc.Len(), "xmark")
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// The pprof listener is deliberately separate from the serving
	// address: profiles stay off the public API surface, and a wedged
	// serving mux cannot take the debug endpoints down with it.
	if *debugAddr != "" {
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("pprof listening on %s", *debugAddr)
			ds := &http.Server{Addr: *debugAddr, Handler: dmux, ReadHeaderTimeout: 10 * time.Second}
			if err := ds.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("pprof server: %v", err)
			}
		}()
	}

	// Graceful shutdown: stop accepting, drain in-flight requests (their
	// own deadlines bound the drain), then exit.
	idle := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
		<-sig
		log.Printf("shutting down: draining in-flight requests")
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		close(idle)
	}()

	poolDesc := "disabled (legacy per-request parallelism)"
	if p := srv.Pool(); p != nil {
		poolDesc = fmt.Sprintf("%d workers", p.Workers())
	}
	log.Printf("pimentod listening on %s (%d documents, cache %d entries, default timeout %s, pool %s)",
		*addr, len(srv.Docs()), *cacheSize, *timeout, poolDesc)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("pimentod: %v", err)
	}
	<-idle
	log.Printf("bye")
}

// parseSize parses a human-friendly byte size: a plain integer, or a
// number with a K or M suffix (1024-based), e.g. "512K", "5.7M".
func parseSize(s string) (int, error) {
	s = strings.ToUpper(strings.TrimSpace(s))
	mult := 1
	switch {
	case strings.HasSuffix(s, "K"):
		mult, s = 1024, s[:len(s)-1]
	case strings.HasSuffix(s, "M"):
		mult, s = 1024*1024, s[:len(s)-1]
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return int(f * float64(mult)), nil
}
