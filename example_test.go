package pimento_test

import (
	"fmt"
	"log"

	pimento "repro"
)

const exampleXML = `<dealer>
  <car><description>good condition, best bid welcome, NYC</description><price>900</price><color>red</color></car>
  <car><description>good condition, one owner</description><price>1500</price><color>blue</color></car>
  <car><description>needs work</description><price>200</price><color>red</color></car>
</dealer>`

// Example demonstrates the personalized-search flow end to end: query,
// profile, ranked answers.
func Example() {
	eng, err := pimento.OpenString(exampleXML)
	if err != nil {
		log.Fatal(err)
	}
	q := pimento.MustParseQuery(`//car[./description[. ftcontains "good condition"] and price < 2000]`)
	prof := pimento.MustParseProfile(`
kor w4: x.tag = car & y.tag = car & ftcontains(x, "best bid") => x < y
rank K,V,S`)
	resp, err := eng.Search(q, prof, pimento.WithK(2))
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range resp.Results {
		price, _ := eng.Document().DeepValue(r.Node, "price")
		fmt.Printf("%d. price=%s preferred=%v\n", i+1, price, r.K > 0)
	}
	// Output:
	// 1. price=900 preferred=true
	// 2. price=1500 preferred=false
}

// ExampleAnalyze shows the Section 5 static analysis: the profile's two
// value-based ordering rules are mutually ambiguous until prioritized.
func ExampleAnalyze() {
	prof := pimento.MustParseProfile(`
vor w1: x.tag = car & y.tag = car & x.color = "red" & y.color != "red" => x < y
vor w2: x.tag = car & y.tag = car & x.mileage < y.mileage => x < y`)
	q := pimento.MustParseQuery(`//car`)
	pa := pimento.Analyze(prof, q)
	fmt.Println("ambiguous:", pa.Ambiguity.Ambiguous)

	prof.VORs[0].Priority = 2
	prof.VORs[1].Priority = 1
	fmt.Println("with priorities:", pimento.Analyze(prof, q).Ambiguity.Ambiguous)
	// Output:
	// ambiguous: true
	// with priorities: false
}

// ExampleWithScorer swaps the base relevance function — the paper's
// thesis is that no single scoring function fits all users.
func ExampleWithScorer() {
	eng, err := pimento.OpenString(exampleXML, pimento.WithScorer(pimento.Boolean()))
	if err != nil {
		log.Fatal(err)
	}
	resp, err := eng.Search(pimento.MustParseQuery(`//car[. ftcontains "good condition"]`), nil)
	if err != nil {
		log.Fatal(err)
	}
	// Under boolean scoring every match gets the same S.
	fmt.Println(len(resp.Results), resp.Results[0].S == resp.Results[1].S)
	// Output:
	// 2 true
}
