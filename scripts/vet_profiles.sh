#!/bin/sh
# Runs `pimento vet` over every example profile. Profiles named
# *.bad.profile document known-broken inputs and must be *rejected*
# (nonzero exit); every other profile must vet clean (exit 0).
set -eu

cd "$(dirname "$0")/.."
GO="${GO:-go}"

bin="$(mktemp -d)/pimento"
trap 'rm -rf "$(dirname "$bin")"' EXIT
"$GO" build -o "$bin" ./cmd/pimento

status=0
for prof in examples/profiles/*.profile; do
    case "$prof" in
    *.bad.profile)
        if out="$("$bin" vet -profile "$prof" 2>&1)"; then
            echo "vet-profiles: $prof should have been rejected:"
            echo "$out"
            status=1
        else
            echo "vet-profiles: $prof rejected (as documented)"
        fi
        ;;
    *)
        if out="$("$bin" vet -profile "$prof" 2>&1)"; then
            echo "vet-profiles: $prof clean"
        else
            echo "vet-profiles: $prof unexpectedly failed:"
            echo "$out"
            status=1
        fi
        ;;
    esac
done
exit $status
