#!/bin/sh
# profile.sh — profile pimentod under a Fig. 7-style workload.
#
# Starts the daemon with a generated XMark document and pprof enabled
# on a debug listener, drives repeated personalized /search requests
# (cache-bypassing, so every request executes a plan), then captures
# CPU and heap profiles plus a /metrics snapshot into PROFILE_DIR.
#
# Usage: scripts/profile.sh
# Tune with:
#   PROFILE_DIR   output directory        (default profiles/)
#   XMARK_SIZE    document size           (default 4M)
#   ADDR          serving address         (default localhost:18080)
#   DEBUG_ADDR    pprof address           (default localhost:16060)
#   CPU_SECONDS   CPU profile duration    (default 10)
set -eu

cd "$(dirname "$0")/.."

dir="${PROFILE_DIR:-profiles}"
size="${XMARK_SIZE:-4M}"
addr="${ADDR:-localhost:18080}"
debug="${DEBUG_ADDR:-localhost:16060}"
cpusec="${CPU_SECONDS:-10}"
mkdir -p "$dir"

go build -o "$dir/pimentod" ./cmd/pimentod

"$dir/pimentod" -addr "$addr" -debug-addr "$debug" -xmark "$size" \
    -slow-query 50ms -cache 64 &
pid=$!
trap 'kill "$pid" 2>/dev/null || true; wait "$pid" 2>/dev/null || true' EXIT

# Wait for the daemon to come up.
i=0
until curl -sf "http://$addr/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -lt 100 ] || { echo "profile.sh: pimentod did not start" >&2; exit 1; }
    sleep 0.1
done

# The Fig. 7 workload shape: the Fig. 5 query under increasingly
# personal profiles (the same DSL workload.Fig5Profile generates).
# no_cache forces a fresh plan execution each time.
profile_body() {
    kors="$1"
    p=""
    i=1
    for phrase in male "United States" College Phoenix; do
        [ "$i" -le "$kors" ] || break
        p="${p}kor pi$i priority $i: x.tag = person & y.tag = person & ftcontains(x, \\\"$phrase\\\") => x < y\\n"
        i=$((i + 1))
    done
    p="${p}rank K,V,S\\n"
    printf '{"doc":"xmark","query":"//person(*)[.//business[. ftcontains \\"Yes\\"]]","profile":"%s","k":10,"no_cache":true}' "$p"
}

echo "profile.sh: driving workload while capturing a ${cpusec}s CPU profile..."
(
    end=$(( $(date +%s) + cpusec + 2 ))
    while [ "$(date +%s)" -lt "$end" ]; do
        for n in 1 2 3 4; do
            curl -sf -o /dev/null "http://$addr/search" -d "$(profile_body "$n")" || true
        done
    done
) &
load=$!

curl -sf -o "$dir/cpu.pprof" "http://$debug/debug/pprof/profile?seconds=$cpusec"
wait "$load" 2>/dev/null || true

curl -sf -o "$dir/heap.pprof" "http://$debug/debug/pprof/heap"
curl -sf -o "$dir/metrics.txt" "http://$addr/metrics"

echo "profile.sh: wrote $dir/cpu.pprof, $dir/heap.pprof, $dir/metrics.txt"
echo "profile.sh: inspect with: go tool pprof $dir/pimentod $dir/cpu.pprof"
