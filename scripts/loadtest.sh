#!/bin/sh
# loadtest.sh — serving-side QPS/latency measurement and the scheduler
# A/B: run pimentod with the admission pool (default) and without it
# (-pool -1, the legacy per-request-GOMAXPROCS behavior), drive both
# with cmd/loadgen at several concurrency levels and document sizes,
# and write BENCH_serving.json — one row per (size, sched, workload)
# with p50/p99/QPS — so the "pooled beats naive under load" claim is a
# committed, regenerable artifact.
#
# Every run's result digest is compared against a sequential
# single-client baseline on the same daemon: the scheduler must change
# scheduling, never answers.
#
# Usage: scripts/loadtest.sh [output.json]
# Tune with DURATION (default 4s per run), SIZES, CONCS, PORT, and
# MAX_P99_MS (a per-run p99 gate for `make serving-smoke`). The
# daemon runs under GOMAXPROCS=8 regardless of the host so the naive
# mode exhibits its oversubscription even on small CI boxes.
set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_serving.json}"
duration="${DURATION:-4s}"
sizes="${SIZES:-101K 1M}"
concs="${CONCS:-16 32}"
port="${PORT:-18080}"
maxp99="${MAX_P99_MS:-0}"
# A single common generator-vocabulary word: the keyword path matches
# it as one phrase, so multiple words would demand exact adjacency and
# return nothing.
keywords="honour"

bin="$(mktemp -d)"
rows="$bin/rows"
daemon_pid=""
cleanup() {
    [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true
    rm -rf "$bin"
}
trap cleanup EXIT INT TERM

go build -o "$bin/pimentod" ./cmd/pimentod
go build -o "$bin/loadgen" ./cmd/loadgen

# field NAME FILE — pull a numeric field out of a loadgen JSON summary.
field() {
    sed -n "s/.*\"$1\": \([0-9.]*\).*/\1/p" "$2" | head -1
}
# digests FILE — the sorted result digests of a run, space-joined.
digests() {
    sed -n '/"digests"/,/\]/p' "$1" | grep -o '"[0-9a-f][0-9a-f]*"' | tr -d '"' | tr '\n' ' '
}

start_daemon() { # $1 = size, $2... = extra pimentod flags
    size="$1"; shift
    GOMAXPROCS=8 "$bin/pimentod" -addr "127.0.0.1:$port" -xmark "$size" "$@" \
        >"$bin/daemon.log" 2>&1 &
    daemon_pid=$!
    i=0
    until curl -sf "http://127.0.0.1:$port/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        [ "$i" -gt 100 ] && { echo "daemon failed to start"; cat "$bin/daemon.log"; exit 1; }
        sleep 0.1
    done
}
stop_daemon() {
    kill "$daemon_pid" 2>/dev/null || true
    wait "$daemon_pid" 2>/dev/null || true
    daemon_pid=""
}

# run_loadgen OUTFILE ARGS... — one measured run.
run_loadgen() {
    f="$1"; shift
    "$bin/loadgen" -addr "127.0.0.1:$port" -doc xmark -keywords "$keywords" \
        -duration "$duration" -max-p99-ms "$maxp99" "$@" >"$f"
}

# row SIZE SCHED WORKLOAD FILE BASE_DIGEST — append one JSON row,
# verifying the run's answers match the sequential baseline.
row() {
    d="$(digests "$4")"
    if [ "$d" != "$5" ]; then
        echo "DIGEST MISMATCH: size=$1 sched=$2 workload=$3: got [$d] want [$5]" >&2
        exit 1
    fi
    printf '  {"size": "%s", "sched": "%s", "workload": "%s", "qps": %s, "p50_ms": %s, "p99_ms": %s, "requests": %s, "shed": %s, "errors": %s, "digest": "%s"}' \
        "$1" "$2" "$3" \
        "$(field achieved_qps "$4")" "$(field p50_ms "$4")" "$(field p99_ms "$4")" \
        "$(field requests "$4")" "$(field shed "$4")" "$(field errors "$4")" \
        "$(echo "$5" | tr -d ' ')" >>"$rows"
    printf ',\n' >>"$rows"
}

: >"$rows"
for size in $sizes; do
    for sched in naive pooled; do
        if [ "$sched" = naive ]; then
            start_daemon "$size" -pool -1
        else
            start_daemon "$size"
        fi

        # Sequential baseline: one client, parallelism pinned to 1. Its
        # digest is the ground truth every loaded run must reproduce.
        run_loadgen "$bin/seq.json" -conc 1 -parallelism 1 -max-errors 0
        base="$(digests "$bin/seq.json")"
        [ -n "$base" ] || { echo "baseline produced no digest"; cat "$bin/seq.json"; exit 1; }
        row "$size" "$sched" "seq-conc1" "$bin/seq.json" "$base"

        for conc in $concs; do
            run_loadgen "$bin/run.json" -conc "$conc" -max-errors 0
            row "$size" "$sched" "closed-conc$conc" "$bin/run.json" "$base"
        done
        run_loadgen "$bin/open.json" -qps 50 -seed 7 -max-errors 0
        row "$size" "$sched" "open-qps50" "$bin/open.json" "$base"

        stop_daemon
        echo "done: size=$size sched=$sched" >&2
    done
done

{
    echo '['
    sed '$s/,$//' "$rows"
    echo ']'
} >"$out"
echo "wrote $out" >&2

# Readable A/B recap: pooled vs naive p99 and QPS per size/workload.
awk -F'"' '
/"sched": "naive"/  { key = $4 "/" $12; n_p99[key] = p99($0); n_qps[key] = qps($0) }
/"sched": "pooled"/ { key = $4 "/" $12; printf "%-24s p99 naive=%.1fms pooled=%.1fms   qps naive=%.1f pooled=%.1f\n", key, n_p99[key], p99($0), n_qps[key], qps($0) }
function p99(line) { match(line, /"p99_ms": [0-9.]+/); return substr(line, RSTART+10, RLENGTH-10) + 0 }
function qps(line) { match(line, /"qps": [0-9.]+/); return substr(line, RSTART+7, RLENGTH-7) + 0 }
' "$out" >&2
