#!/bin/sh
# bench_twigjoin.sh — run the access-path benchmarks (scan vs holistic
# twig join) and write BENCH_twigjoin.json: one record per (benchmark,
# plan, size, access) with ns/op, so the twigjoin speedup claim is a
# committed, regenerable artifact.
#
# Usage: scripts/bench_twigjoin.sh [output.json]
# Tune with BENCHTIME (default 1x for CI speed; use e.g. 5s for stable
# numbers) and BENCH (regexp of benchmarks to run).
set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_twigjoin.json}"
benchtime="${BENCHTIME:-1x}"
bench="${BENCH:-BenchmarkTwigJoin}"

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench "$bench" -benchtime "$benchtime" . | tee "$raw"

awk '
BEGIN { print "[" ; n = 0 }
/^Benchmark/ && $4 == "ns/op" {
    name = $1
    sub(/-[0-9]+$/, "", name)          # strip the -GOMAXPROCS suffix
    size = ""; plan = ""; kors = ""; access = ""
    split(name, parts, "/")
    for (i in parts) {
        if (parts[i] ~ /^size=/)   { size   = substr(parts[i], 6) }
        if (parts[i] ~ /^plan=/)   { plan   = substr(parts[i], 6) }
        if (parts[i] ~ /^kors=/)   { kors   = substr(parts[i], 6) }
        if (parts[i] ~ /^access=/) { access = substr(parts[i], 8) }
    }
    if (n++) printf ",\n"
    printf "  {\"benchmark\": \"%s\"", name
    if (plan != "")   printf ", \"plan\": \"%s\"", plan
    if (kors != "")   printf ", \"kors\": %s", kors
    if (size != "")   printf ", \"size\": \"%s\"", size
    if (access != "") printf ", \"access\": \"%s\"", access
    printf ", \"iters\": %s, \"ns_per_op\": %s}", $2, $3
}
END { print "\n]" }
' "$raw" > "$out"

echo "wrote $out"
