#!/bin/sh
# bench_parallel.sh — run the parallel-execution benchmarks and write
# BENCH_parallel.json: one record per (benchmark, size, parallelism)
# with ns/op, so the sequential-vs-parallel wall-clock claim is a
# committed, regenerable artifact.
#
# Usage: scripts/bench_parallel.sh [output.json]
# Tune with BENCHTIME (default 1x for CI speed; use e.g. 5s for stable
# numbers) and BENCH (regexp of benchmarks to run).
set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_parallel.json}"
benchtime="${BENCHTIME:-1x}"
bench="${BENCH:-BenchmarkParScale|BenchmarkFig7/plan=PtpkP}"

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench "$bench" -benchtime "$benchtime" . | tee "$raw"

awk -v gomaxprocs="$(go env GOMAXPROCS 2>/dev/null || echo "")" '
BEGIN { print "[" ; n = 0 }
/^Benchmark/ && $4 == "ns/op" {
    name = $1
    sub(/-[0-9]+$/, "", name)          # strip the -GOMAXPROCS suffix
    size = ""; par = ""; plan = ""; kors = ""
    split(name, parts, "/")
    for (i in parts) {
        if (parts[i] ~ /^size=/) { size = substr(parts[i], 6) }
        if (parts[i] ~ /^par=/)  { par  = substr(parts[i], 5) }
        if (parts[i] ~ /^plan=/) { plan = substr(parts[i], 6) }
        if (parts[i] ~ /^kors=/) { kors = substr(parts[i], 6) }
    }
    if (n++) printf ",\n"
    printf "  {\"benchmark\": \"%s\"", name
    if (plan != "") printf ", \"plan\": \"%s\"", plan
    if (kors != "") printf ", \"kors\": %s", kors
    if (size != "") printf ", \"size\": \"%s\"", size
    if (par != "")  printf ", \"par\": %s", par
    printf ", \"iters\": %s, \"ns_per_op\": %s}", $2, $3
}
END { print "\n]" }
' "$raw" > "$out"

echo "wrote $out"
