// Package load is the standalone (non-vettool) front end: it resolves
// package patterns with `go list -json -deps`, type-checks everything
// from source — function bodies only for the packages actually being
// analyzed, signatures for dependencies — and hands the targets to the
// driver. This is what `make analyze-baseline` uses: it needs no
// compiled export data, so it can audit a tree that go vet refuses to
// cache, and it is the loader the analysistest harness shares.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"

	"repro/tools/analyze/driver"
)

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Name       string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	ImportMap  map[string]string // source import → resolved path (identity omitted)
	Error      *struct{ Err string }
}

// A Target is one fully type-checked package selected by the patterns.
type Target struct {
	Path  string
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// A Loaded holds the shared fileset and the analysis targets.
type Loaded struct {
	Fset    *token.FileSet
	Targets []*Target
}

// Load lists patterns relative to dir and type-checks the matched
// packages plus (bodies-ignored) their dependency closure.
func Load(dir string, patterns []string) (*Loaded, error) {
	args := append([]string{"list", "-json", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("go list: %w", err)
	}

	var order []*listPkg
	byPath := map[string]*listPkg{}
	dec := json.NewDecoder(out)
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			cmd.Wait()
			return nil, fmt.Errorf("go list output: %w\n%s", err, stderr.String())
		}
		pp := p
		order = append(order, &pp)
		byPath[p.ImportPath] = &pp
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("go list: %w\n%s", err, stderr.String())
	}

	ld := &loader{
		fset:   token.NewFileSet(),
		byPath: byPath,
		cache:  map[string]*types.Package{},
	}
	loaded := &Loaded{Fset: ld.fset}
	// -deps emits dependencies before dependents, so walking in order
	// fills the import cache bottom-up.
	for _, p := range order {
		if p.Error != nil {
			return nil, fmt.Errorf("go list %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.DepOnly || p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		t, err := ld.checkTarget(p)
		if err != nil {
			return nil, err
		}
		loaded.Targets = append(loaded.Targets, t)
	}
	return loaded, nil
}

type loader struct {
	fset   *token.FileSet
	byPath map[string]*listPkg
	cache  map[string]*types.Package
}

// parseFiles parses a package's production sources.
func (ld *loader) parseFiles(p *listPkg) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(ld.fset, filepath.Join(p.Dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// checkTarget type-checks a pattern-matched package with full bodies
// and info maps.
func (ld *loader) checkTarget(p *listPkg) (*Target, error) {
	files, err := ld.parseFiles(p)
	if err != nil {
		return nil, err
	}
	info := driver.NewInfo()
	tc := &types.Config{Importer: ld.importerFor(p)}
	pkg, err := tc.Check(p.ImportPath, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typechecking %s: %w", p.ImportPath, err)
	}
	ld.cache[p.ImportPath] = pkg
	return &Target{Path: p.ImportPath, Files: files, Pkg: pkg, Info: info}, nil
}

// checkDep type-checks a dependency signatures-only (function bodies
// skipped: analyzers never look inside dependencies, only at their
// exported shapes).
func (ld *loader) checkDep(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := ld.cache[path]; ok {
		return pkg, nil
	}
	p, ok := ld.byPath[path]
	if !ok {
		return nil, fmt.Errorf("package %q not in the go list closure", path)
	}
	files, err := ld.parseFiles(p)
	if err != nil {
		return nil, err
	}
	tc := &types.Config{Importer: ld.importerFor(p), IgnoreFuncBodies: true}
	pkg, err := tc.Check(p.ImportPath, ld.fset, files, nil)
	if err != nil {
		return nil, fmt.Errorf("typechecking dependency %s: %w", p.ImportPath, err)
	}
	ld.cache[path] = pkg
	return pkg, nil
}

// importerFor resolves p's source-level imports (vendor/module
// mapping applied) through the loader cache.
func (ld *loader) importerFor(p *listPkg) types.Importer {
	return importerFunc(func(importPath string) (*types.Package, error) {
		resolved := importPath
		if m, ok := p.ImportMap[importPath]; ok {
			resolved = m
		}
		return ld.checkDep(resolved)
	})
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
