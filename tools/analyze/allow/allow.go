// Package allow implements the //pimento:allow suppression contract.
//
// A finding is suppressed by an annotation comment
//
//	//pimento:allow <analyzer> <reason...>
//
// placed either trailing on the flagged line or on the comment line(s)
// immediately above it. The reason is mandatory — an annotation is a
// reviewed, justified exception, and the checker prints every reason in
// its summary so exceptions stay visible instead of rotting silently.
// Malformed annotations (missing reason, unknown analyzer name) and
// annotations that suppress nothing are themselves findings: a stale
// suppression is a lie about the code.
package allow

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Marker is the annotation prefix, after the comment slashes.
const Marker = "pimento:allow"

// An Entry is one parsed //pimento:allow annotation.
type Entry struct {
	File     string // full filename as recorded in the fset
	Line     int    // line the annotation comment sits on
	Analyzer string
	Reason   string
	Used     bool // set when the entry suppresses at least one finding
}

// A Problem is a malformed annotation, reported as a finding of the
// synthetic "pimentoallow" check.
type Problem struct {
	Pos     token.Pos
	Message string
}

// A Set holds every annotation found in one package's files.
type Set struct {
	// entries[file][line] — a line can carry at most one annotation
	// (one trailing comment), but stacked standalone comment lines each
	// carry their own.
	entries map[string]map[int][]*Entry
}

// Collect parses annotations from the files' comments. known is the
// set of valid analyzer names; an annotation naming an unknown
// analyzer is reported as a Problem (it would otherwise silently
// suppress nothing forever).
func Collect(fset *token.FileSet, files []*ast.File, known map[string]bool) (*Set, []Problem) {
	s := &Set{entries: make(map[string]map[int][]*Entry)}
	var problems []Problem
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, Marker) {
					continue
				}
				rest := strings.TrimPrefix(text, Marker)
				fields := strings.Fields(rest)
				pos := fset.Position(c.Pos())
				if len(fields) == 0 {
					problems = append(problems, Problem{c.Pos(),
						fmt.Sprintf("malformed %s annotation: missing analyzer name and reason", Marker)})
					continue
				}
				name := fields[0]
				if known != nil && !known[name] {
					problems = append(problems, Problem{c.Pos(),
						fmt.Sprintf("%s names unknown analyzer %q", Marker, name)})
					continue
				}
				if len(fields) < 2 {
					problems = append(problems, Problem{c.Pos(),
						fmt.Sprintf("%s %s: a justification reason is required", Marker, name)})
					continue
				}
				e := &Entry{
					File:     pos.Filename,
					Line:     pos.Line,
					Analyzer: name,
					Reason:   strings.Join(fields[1:], " "),
				}
				byLine := s.entries[e.File]
				if byLine == nil {
					byLine = make(map[int][]*Entry)
					s.entries[e.File] = byLine
				}
				byLine[e.Line] = append(byLine[e.Line], e)
			}
		}
	}
	return s, problems
}

// Suppresses reports whether an annotation covers a finding of
// analyzer at file:line, marking the entry used. Coverage is the
// annotation's own line (trailing comment) or a run of annotation
// lines directly above the flagged line (stacked standalone comments).
func (s *Set) Suppresses(file string, line int, analyzer string) (*Entry, bool) {
	byLine := s.entries[file]
	if byLine == nil {
		return nil, false
	}
	// The flagged line itself, then walk up through contiguous
	// annotation-bearing lines so several analyzers can be excepted at
	// one site, each with its own reason.
	for l := line; l == line || len(byLine[l]) > 0; l-- {
		for _, e := range byLine[l] {
			if e.Analyzer == analyzer {
				e.Used = true
				return e, true
			}
		}
	}
	return nil, false
}

// Unused returns annotations that suppressed nothing, sorted by
// position — each is a stale exception to clean up.
func (s *Set) Unused() []*Entry {
	var out []*Entry
	for _, byLine := range s.entries {
		for _, es := range byLine {
			for _, e := range es {
				if !e.Used {
					out = append(out, e)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Line < out[j].Line
	})
	return out
}

// All returns every annotation, sorted by position, for the summary
// listing.
func (s *Set) All() []*Entry {
	var out []*Entry
	for _, byLine := range s.entries {
		for _, es := range byLine {
			out = append(out, es...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Line < out[j].Line
	})
	return out
}
