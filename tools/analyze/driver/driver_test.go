package driver_test

import (
	"testing"

	"repro/tools/analyze/analysistest"
	"repro/tools/analyze/driver"
)

// TestAnnotationHygiene exercises the synthetic pimentoallow findings:
// malformed annotations and stale suppressions are diagnostics too.
func TestAnnotationHygiene(t *testing.T) {
	analysistest.Run(t, "../testdata", "allowcase")
}

// TestSuiteShape pins the analyzer roster: adding an analyzer must be
// a conscious act (update this list, DESIGN.md §17 and the README).
func TestSuiteShape(t *testing.T) {
	want := []string{
		"ctxbg", "snapshotonce", "cancelprobe", "metriclabels",
		"budgetedgo", "scratchrelease", "nowfree",
	}
	got := driver.Analyzers()
	if len(got) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("analyzer[%d] = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no doc", a.Name)
		}
		if !driver.KnownNames()[a.Name] {
			t.Errorf("analyzer %q missing from KnownNames", a.Name)
		}
	}
	if !driver.KnownNames()[driver.AllowCheckName] {
		t.Errorf("KnownNames missing the %s hygiene check", driver.AllowCheckName)
	}
}
