// Package driver runs the pimento analyzer suite over one
// type-checked package and applies the //pimento:allow suppression
// contract. Both front ends — the go vet unitchecker protocol and the
// standalone loader — feed packages through RunPackage so suppression,
// test-file skipping, and finding order are identical regardless of
// how the package was loaded.
package driver

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/tools/analyze/allow"
	"repro/tools/analyze/analysis"
	"repro/tools/analyze/passes/budgetedgo"
	"repro/tools/analyze/passes/cancelprobe"
	"repro/tools/analyze/passes/ctxbg"
	"repro/tools/analyze/passes/metriclabels"
	"repro/tools/analyze/passes/nowfree"
	"repro/tools/analyze/passes/scratchrelease"
	"repro/tools/analyze/passes/snapshotonce"
)

// AllowCheckName is the synthetic analyzer name under which annotation
// hygiene findings (malformed or stale //pimento:allow) are reported.
// It is a valid annotation target like any other analyzer, though
// suppressing the suppression checker should give a reviewer pause.
const AllowCheckName = "pimentoallow"

// Analyzers returns the full suite in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		ctxbg.Analyzer,
		snapshotonce.Analyzer,
		cancelprobe.Analyzer,
		metriclabels.Analyzer,
		budgetedgo.Analyzer,
		scratchrelease.Analyzer,
		nowfree.Analyzer,
	}
}

// KnownNames is the set of valid //pimento:allow targets.
func KnownNames() map[string]bool {
	known := map[string]bool{AllowCheckName: true}
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	return known
}

// A Finding is one surviving (unsuppressed) diagnostic.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// A Result is the outcome of analyzing one package.
type Result struct {
	// Findings that survived suppression, sorted by position.
	Findings []Finding
	// Suppressed counts findings absorbed by annotations.
	Suppressed int
	// Annotations lists every //pimento:allow in the package's
	// non-test files, for the exception summary.
	Annotations []*allow.Entry
}

// RunPackage applies the whole suite to one package. Test files are
// excluded before analyzers see them — the invariants target
// production code; tests fabricate contexts and snapshots freely.
func RunPackage(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) (*Result, error) {
	var prod []*ast.File
	for _, f := range files {
		name := fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		prod = append(prod, f)
	}

	allows, problems := allow.Collect(fset, prod, KnownNames())

	type rawDiag struct {
		analyzer string
		diag     analysis.Diagnostic
	}
	var raw []rawDiag
	for _, a := range Analyzers() {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     prod,
			Pkg:       pkg,
			TypesInfo: info,
		}
		name := a.Name
		pass.Report = func(d analysis.Diagnostic) {
			raw = append(raw, rawDiag{name, d})
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s failed on %s: %w", a.Name, pkg.Path(), err)
		}
	}

	res := &Result{}
	for _, rd := range raw {
		pos := fset.Position(rd.diag.Pos)
		if _, ok := allows.Suppresses(pos.Filename, pos.Line, rd.analyzer); ok {
			res.Suppressed++
			continue
		}
		res.Findings = append(res.Findings, Finding{rd.analyzer, pos, rd.diag.Message})
	}

	// Annotation hygiene: malformed annotations, then stale ones.
	// Staleness is itself suppressable (an annotation can legitimately
	// cover a finding that only occurs on some build configurations),
	// so route these through the same filter.
	for _, p := range problems {
		pos := fset.Position(p.Pos)
		if _, ok := allows.Suppresses(pos.Filename, pos.Line, AllowCheckName); ok {
			res.Suppressed++
			continue
		}
		res.Findings = append(res.Findings, Finding{AllowCheckName, pos, p.Message})
	}
	staleMsg := func(e *allow.Entry) Finding {
		return Finding{AllowCheckName,
			token.Position{Filename: e.File, Line: e.Line, Column: 1},
			fmt.Sprintf("stale //%s %s annotation: it suppresses nothing — remove it or fix the drift",
				allow.Marker, e.Analyzer)}
	}
	for _, e := range allows.Unused() {
		if e.Analyzer == AllowCheckName {
			continue // judged in the second pass, after meta-suppressions settle
		}
		if _, ok := allows.Suppresses(e.File, e.Line, AllowCheckName); ok {
			res.Suppressed++
			continue
		}
		res.Findings = append(res.Findings, staleMsg(e))
	}
	// Second pass: pimentoallow meta-annotations that are still unused
	// after absorbing stale-annotation findings are themselves stale.
	// These are reported unconditionally — the suppression checker's own
	// exceptions don't get exceptions.
	for _, e := range allows.Unused() {
		if e.Analyzer == AllowCheckName {
			res.Findings = append(res.Findings, staleMsg(e))
		}
	}

	res.Annotations = allows.All()
	sort.Slice(res.Findings, func(i, j int) bool {
		a, b := res.Findings[i], res.Findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return res, nil
}

// NewInfo allocates a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}
