// Fixture for the cancelprobe analyzer: source operators must probe,
// declared probes must fire.
package algebra

// CancelCheck mimics the real probe type: the analyzer matches it by
// type name within the scoped packages.
type CancelCheck struct{ n int }

func (c *CancelCheck) Stop() bool { c.n++; return false }

// BadScanOp is a source operator (emits from a slice, pulls no
// upstream) with no probe: a dead context never aborts it.
type BadScanOp struct {
	items []int
	i     int
}

func (o *BadScanOp) Open() {}

func (o *BadScanOp) Next() (int, bool) { // want cancelprobe "without a cancellation probe"
	if o.i >= len(o.items) {
		return 0, false
	}
	o.i++
	return o.items[o.i-1], true
}

// GoodScanOp probes on every emit.
type GoodScanOp struct {
	items  []int
	i      int
	cancel *CancelCheck
}

func (o *GoodScanOp) Open() {}

func (o *GoodScanOp) Next() (int, bool) {
	if o.cancel.Stop() {
		return 0, false
	}
	if o.i >= len(o.items) {
		return 0, false
	}
	o.i++
	return o.items[o.i-1], true
}

// FilterOp pulls its input's Next: abort latency is bounded by the
// chain's source, so no probe of its own is required.
type FilterOp struct{ In *GoodScanOp }

func (o *FilterOp) Open() {}

func (o *FilterOp) Next() (int, bool) {
	for {
		v, ok := o.In.Next()
		if !ok {
			return 0, false
		}
		if v%2 == 0 {
			return v, true
		}
	}
}

// deadProbe accepts a stop probe and never fires it around its loop.
func deadProbe(xs []int, stop func() bool) int { // want cancelprobe "never fires it"
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

// liveProbe fires the probe inside the loop.
func liveProbe(xs []int, stop func() bool) int {
	s := 0
	for _, x := range xs {
		if stop != nil && stop() {
			break
		}
		s += x
	}
	return s
}

//pimento:allow cancelprobe fixture: loop is bounded by a tiny constant, probing would cost more than it saves
func allowedDeadProbe(xs []int, stop func() bool) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}
