// Fixture: a package outside the serving scope — context.Background()
// here is fine (offline tooling, experiment harnesses).
package util

import "context"

func Run() context.Context {
	return context.Background()
}
