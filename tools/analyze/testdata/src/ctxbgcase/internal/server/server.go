// Fixture for the ctxbg analyzer: the package path suffix
// internal/server puts it in the serving scope.
package server

import "context"

func handleBad() context.Context {
	return context.Background() // want ctxbg "thread the caller's context"
}

func handleTODO() context.Context {
	return context.TODO() // want ctxbg "thread the caller's context"
}

func handleAllowed() context.Context {
	//pimento:allow ctxbg fixture: context-free entry point whose contract is run-to-completion
	return context.Background()
}

func handleClean(ctx context.Context) context.Context {
	return ctx
}
