// Fixture stand-in for the real internal/metrics registry: the
// metriclabels analyzer matches Registry by package-path suffix.
package metrics

type Labels map[string]string

type Counter struct{}
type Gauge struct{}
type Histogram struct{}

type Registry struct{}

func (r *Registry) Counter(name, help string, labels Labels) *Counter     { return &Counter{} }
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge         { return &Gauge{} }
func (r *Registry) Histogram(name, help string, labels Labels) *Histogram { return &Histogram{} }
