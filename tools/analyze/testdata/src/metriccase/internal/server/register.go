// Fixture for the metriclabels analyzer: metric registration with
// bounded and unbounded label values.
package server

import "metriccase/internal/metrics"

// opKinds is a declared bounded set: a package-level literal of string
// constants.
var opKinds = []string{"scan", "filter", "topk"}

const endpoint = "search"

func register(reg *metrics.Registry, queryText string) {
	reg.Counter("requests_total", "Requests served.", metrics.Labels{"endpoint": endpoint})
	reg.Gauge("corpus_docs", "Documents resident.", nil)
	for _, k := range opKinds {
		reg.Counter("op_total", "Operator executions.", metrics.Labels{"op": k})
	}
	reg.Counter("bad_total", "Per-query counter.", metrics.Labels{"q": queryText}) // want metriclabels "declared bounded set"
	reg.Histogram("opaque_seconds", "Opaque labels.", someLabels())                // want metriclabels "not a literal"
	//pimento:allow metriclabels fixture: dynamicID draws from a registry that is fixed at compile time
	reg.Counter("allowed_total", "Allowed counter.", metrics.Labels{"id": dynamicID()})
}

func someLabels() metrics.Labels { return nil }
func dynamicID() string          { return "x" }
