// Fixture for the nowfree analyzer: wall-clock reads inside
// key-derivation functions.
package nowcase

import (
	"fmt"
	"time"
)

// CacheKey is a key-derivation function by naming convention: a
// time.Now() here poisons every lookup.
func CacheKey(gen uint64, q string) string {
	now := time.Now() // want nowfree "non-deterministic"
	return fmt.Sprintf("%d/%s/%d", gen, q, now.UnixNano())
}

// profileFingerprint derives purely from its inputs.
func profileFingerprint(gen uint64, rev int, q string) string {
	return fmt.Sprintf("%d/%d/%s", gen, rev, q)
}

// measure is not a key function: latency timing is what time.Now is
// for.
func measure(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

// FingerprintWithEpoch folds a coarse TTL epoch in deliberately.
func FingerprintWithEpoch(gen uint64) string {
	//pimento:allow nowfree fixture: coarse TTL epoch folded in deliberately; documented expiry semantics
	epoch := time.Now().Unix() / 3600
	return fmt.Sprintf("%d@%d", gen, epoch)
}
