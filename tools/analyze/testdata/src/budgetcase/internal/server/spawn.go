// Fixture for the budgetedgo analyzer: goroutine spawns in a serving
// package.
package server

// Budget mimics the sched.Budget token semaphore.
type Budget struct{ ch chan struct{} }

func (b *Budget) TryAcquire() bool { return true }
func (b *Budget) Release()         {}

func spawnBad(work func()) {
	go work() // want budgetedgo "unbudgeted goroutine spawn"
}

func spawnBudgeted(b *Budget, work func()) {
	if !b.TryAcquire() {
		work() // degrade to inline execution when the budget is dry
		return
	}
	go func() {
		defer b.Release()
		work()
	}()
}

func spawnAllowed(work func()) {
	//pimento:allow budgetedgo fixture: construction-time singleton, one goroutine for the process lifetime
	go work()
}
