// Fixture for the scratchrelease analyzer: sync.Pool acquisition and
// release pairing. The analyzer is unscoped (pools appear in algebra,
// twig and server alike), so any package path works.
package scratchcase

import "sync"

type buf struct{ b []byte }

func (s *buf) release() { pool.Put(s) }

var pool = sync.Pool{New: func() any { return new(buf) }}

type holder struct{ scratch *buf }

// paired is the canonical idiom: acquire, defer release.
func paired() int {
	s := pool.Get().(*buf)
	defer s.release()
	return len(s.b)
}

// putBack releases by returning the value to the pool directly.
func putBack() {
	s := pool.Get().(*buf)
	pool.Put(s)
}

// transfer hands ownership to the caller — the get-helper pattern.
func transfer() *buf {
	return pool.Get().(*buf)
}

// leaky binds the scratch and never releases it.
func leaky() int {
	s := pool.Get().(*buf) // want scratchrelease "no paired release"
	return len(s.b)
}

// dropped doesn't even bind the result.
func dropped() {
	_ = pool.Get() // want scratchrelease "acquired and dropped"
}

// allowedStash stores the scratch in a struct the analyzer can't track.
func allowedStash(h *holder) {
	//pimento:allow scratchrelease fixture: stashed in holder, holder.close returns it to the pool
	h.scratch = pool.Get().(*buf)
}
