// Fixture stand-in for the real internal/corpus: the snapshotonce
// analyzer matches the Corpus type by package-path suffix, so this
// fake exercises it without importing the repository.
package corpus

type Snapshot struct{ docs []string }

func (s *Snapshot) Len() int { return len(s.docs) }

type Corpus struct{ snap *Snapshot }

func (c *Corpus) Snapshot() *Snapshot { return c.snap }
func (c *Corpus) Generation() uint64  { return 0 }
func (c *Corpus) Len() int            { return 0 }
