// Fixture for the snapshotonce analyzer: handlers in a serving package
// reading corpus state.
package server

import "snapcase/internal/corpus"

// handleBad loads twice: a mutation can land between the two reads and
// the values straddle generations.
func handleBad(c *corpus.Corpus) int {
	n := c.Len()
	g := c.Generation() // want snapshotonce "loads the corpus snapshot again"
	return n + int(g)
}

// handleClean loads once and threads the snapshot into its helper.
func handleClean(c *corpus.Corpus) int {
	s := c.Snapshot()
	return s.Len() + helper(s)
}

func helper(s *corpus.Snapshot) int { return s.Len() }

// handleAllowed documents why generation skew is acceptable here.
func handleAllowed(c *corpus.Corpus) uint64 {
	n := c.Len()
	//pimento:allow snapshotonce fixture: advisory stats endpoint, generation skew between the two reads is harmless
	g := c.Generation()
	return g + uint64(n)
}
