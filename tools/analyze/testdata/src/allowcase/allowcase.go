// Fixture for the annotation-hygiene (pimentoallow) findings:
// malformed and stale //pimento:allow annotations are themselves
// diagnostics — a suppression that suppresses nothing is a lie about
// the code.
package allowcase

import "time"

/* want pimentoallow "justification reason is required" */ //pimento:allow nowfree
func missingReason()                                       {}

/* want pimentoallow "unknown analyzer" */ //pimento:allow nosuchcheck the analyzer name is misspelled
func unknownAnalyzer()                     {}

/* want pimentoallow "suppresses nothing" */ //pimento:allow nowfree valid reason but the line below is clean
func stale() time.Duration {
	start := time.Now()
	return time.Since(start)
}
