// Package server is a deliberately non-compliant serving package: the
// e2e test runs the built pimento-analyze binary over this module
// (both through `go vet -vettool` and standalone) and asserts the
// violations below surface with the right analyzer names.
package server

import (
	"context"
	"time"
)

// Handle fabricates a context on a serving path (ctxbg).
func Handle() context.Context {
	return context.Background()
}

// SpawnWorker starts an unbudgeted goroutine (budgetedgo).
func SpawnWorker(work func()) {
	go work()
}

// RequestCacheKey folds the clock into a cache key (nowfree).
func RequestCacheKey(q string) int64 {
	return time.Now().UnixNano() + int64(len(q))
}
