package metriclabels_test

import (
	"testing"

	"repro/tools/analyze/analysistest"
)

func TestRegistration(t *testing.T) {
	analysistest.Run(t, "../../testdata", "metriccase/internal/server")
}
