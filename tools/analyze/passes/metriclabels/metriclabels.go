// Package metriclabels enforces bounded metric label cardinality at
// compile time.
//
// Invariant (DESIGN.md §11): every label value passed to
// Registry.Counter/Gauge/Histogram comes from a compile-time-
// enumerable set — endpoint names, operator kinds, outcome classes —
// never from request content. The runtime label lint catches a leak
// after it has already minted series; this analyzer rejects the call
// site itself. A label value is accepted when it is:
//
//   - a constant expression (string literal, named const), or
//   - (an index into) a range variable iterating a package-level var
//     whose initializer is a composite literal of string constants —
//     the "declared bounded set" idiom used by internal/server's
//     metric registration loops.
//
// Anything else — request-derived strings, function results, values
// threaded through fields — needs a //pimento:allow metriclabels
// annotation arguing why the set is in fact bounded.
package metriclabels

import (
	"go/ast"
	"go/types"

	"repro/tools/analyze/analysis"
	"repro/tools/analyze/passes/internal/scope"
)

var registerMethods = map[string]bool{"Counter": true, "Gauge": true, "Histogram": true}

// Analyzer flags unbounded label values at metric registration sites.
var Analyzer = &analysis.Analyzer{
	Name: "metriclabels",
	Doc: "label values passed to Registry.Counter/Gauge/Histogram must be compile-time constants " +
		"or drawn from a declared bounded set (a package-level literal slice); request-derived " +
		"values mint unbounded series",
	Run: run,
}

func run(pass *analysis.Pass) error {
	b := newBoundedness(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			recvPkg, recvType, method, ok := scope.MethodCall(pass.TypesInfo, call)
			if !ok || recvType != "Registry" || !registerMethods[method] ||
				!scope.PathMatches(recvPkg, "internal/metrics") {
				return true
			}
			b.checkLabelsArg(call.Args[len(call.Args)-1])
			return true
		})
	}
	return nil
}

// boundedness resolves whether expressions are drawn from bounded
// sets, using two package-wide maps built once per run.
type boundedness struct {
	pass *analysis.Pass
	// pkgVarInit maps a package-level var to its initializer.
	pkgVarInit map[*types.Var]ast.Expr
	// rangedOver maps a range-statement variable to the expression it
	// ranges over.
	rangedOver map[*types.Var]ast.Expr
}

func newBoundedness(pass *analysis.Pass) *boundedness {
	b := &boundedness{
		pass:       pass,
		pkgVarInit: map[*types.Var]ast.Expr{},
		rangedOver: map[*types.Var]ast.Expr{},
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != len(vs.Names) {
					continue
				}
				for i, name := range vs.Names {
					if v, ok := b.pass.TypesInfo.Defs[name].(*types.Var); ok {
						b.pkgVarInit[v] = vs.Values[i]
					}
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			for _, e := range []ast.Expr{rs.Key, rs.Value} {
				if id, ok := e.(*ast.Ident); ok {
					if v, ok := b.pass.TypesInfo.Defs[id].(*types.Var); ok {
						b.rangedOver[v] = rs.X
					}
				}
			}
			return true
		})
	}
	return b
}

// checkLabelsArg validates the labels argument of a registration call.
func (b *boundedness) checkLabelsArg(arg ast.Expr) {
	if tv, ok := b.pass.TypesInfo.Types[arg]; ok && tv.IsNil() {
		return // nil labels: an unlabeled series
	}
	lit, ok := ast.Unparen(arg).(*ast.CompositeLit)
	if !ok {
		b.pass.Reportf(arg.Pos(),
			"labels argument is not a literal metrics.Labels{...}: the analyzer cannot see the "+
				"label values, so boundedness cannot be checked — inline the literal or annotate")
		return
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if !b.bounded(kv.Key) {
			b.pass.Reportf(kv.Key.Pos(), "metric label key is not a compile-time constant")
		}
		if !b.bounded(kv.Value) {
			b.pass.Reportf(kv.Value.Pos(),
				"metric label value is neither a compile-time constant nor drawn from a declared "+
					"bounded set (package-level literal slice); a request-derived value here mints "+
					"unbounded series — use a static fold (cf. OpStats.Kind) or annotate with the "+
					"boundedness argument")
		}
	}
}

// bounded reports whether expr provably takes values from a finite,
// compile-time-known set.
func (b *boundedness) bounded(expr ast.Expr) bool {
	expr = ast.Unparen(expr)
	if tv, ok := b.pass.TypesInfo.Types[expr]; ok && tv.Value != nil {
		return true // constant
	}
	switch e := expr.(type) {
	case *ast.IndexExpr:
		// s[0] where s is itself bounded (e.g. a [2]string range var).
		return b.bounded(e.X)
	case *ast.Ident:
		v, ok := b.pass.TypesInfo.Uses[e].(*types.Var)
		if !ok {
			return false
		}
		if over, ok := b.rangedOver[v]; ok {
			return b.boundedSet(over)
		}
		return false
	}
	return false
}

// boundedSet reports whether expr denotes a declared bounded set: a
// package-level var initialized with a composite literal whose leaf
// elements are all string constants.
func (b *boundedness) boundedSet(expr ast.Expr) bool {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return false
	}
	v, ok := b.pass.TypesInfo.Uses[id].(*types.Var)
	if !ok {
		return false
	}
	init, ok := b.pkgVarInit[v]
	if !ok {
		return false
	}
	return b.allConstLeaves(init)
}

// allConstLeaves walks a composite literal accepting only constant
// leaves (possibly nested, e.g. [][2]string{{"put", "created"}}).
func (b *boundedness) allConstLeaves(expr ast.Expr) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			if !b.allConstLeaves(elt) {
				return false
			}
		}
		return true
	default:
		tv, ok := b.pass.TypesInfo.Types[expr]
		return ok && tv.Value != nil
	}
}
