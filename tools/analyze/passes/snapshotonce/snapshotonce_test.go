package snapshotonce_test

import (
	"testing"

	"repro/tools/analyze/analysistest"
)

func TestHandlers(t *testing.T) {
	analysistest.Run(t, "../../testdata", "snapcase/internal/server")
}

func TestCorpusItselfIsClean(t *testing.T) {
	analysistest.Run(t, "../../testdata", "snapcase/internal/corpus")
}
