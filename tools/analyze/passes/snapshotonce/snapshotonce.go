// Package snapshotonce enforces the single-snapshot-read rule on the
// serving substrate.
//
// Invariant (DESIGN.md §15): a request resolves every corpus read —
// existence checks, cache-key fingerprints, execution — against ONE
// atomic snapshot, loaded exactly once. PR 7 fixed a generation-mixing
// race where a handler read the registry and a per-name engine map
// separately: a mutation landing between the two reads produced a
// cache key from one generation filled by another generation's index.
// This analyzer makes that class un-reintroducible: within a single
// function, at most one call may load corpus state. Helpers take the
// loaded *Snapshot as a parameter instead of re-reading.
//
// A "load" is any call of the snapshot-reading accessors on the corpus
// type (Snapshot, Generation, Len, Names, Document, Index, Search,
// SearchContext) — each performs its own atomic load, so two of them
// in one function can observe different generations.
package snapshotonce

import (
	"go/ast"
	"go/token"

	"repro/tools/analyze/analysis"
	"repro/tools/analyze/passes/internal/scope"
)

// loadMethods are the (*corpus.Corpus) methods that perform an atomic
// snapshot load.
var loadMethods = map[string]bool{
	"Snapshot":      true,
	"Generation":    true,
	"Len":           true,
	"Names":         true,
	"Document":      true,
	"Index":         true,
	"Search":        true,
	"SearchContext": true,
}

// Analyzer flags functions that load corpus state more than once.
var Analyzer = &analysis.Analyzer{
	Name: "snapshotonce",
	Doc: "a function may load the corpus snapshot at most once (Snapshot() or any " +
		"snapshot-reading accessor); two loads can straddle a mutation and mix generations — " +
		"thread the *Snapshot into helpers instead",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !scope.PathAny(pass.Pkg.Path(), scope.ServingPkgs) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// checkFunc counts snapshot loads across the function body including
// nested closures: a closure spawned by a request handler still runs
// inside that request, so its loads mix with the handler's.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	var loads []struct {
		pos    token.Pos
		method string
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		recvPkg, recvType, method, ok := scope.MethodCall(pass.TypesInfo, call)
		if !ok || recvType != "Corpus" || !scope.PathMatches(recvPkg, "internal/corpus") {
			return true
		}
		if loadMethods[method] {
			loads = append(loads, struct {
				pos    token.Pos
				method string
			}{call.Pos(), method})
		}
		return true
	})
	if len(loads) < 2 {
		return
	}
	for i, l := range loads[1:] {
		pass.Reportf(l.pos,
			"%s loads the corpus snapshot again via %s (load #%d; first load was %s): "+
				"resolve every read against one Snapshot() or generations can mix across a concurrent mutation",
			fd.Name.Name, l.method, i+2, loads[0].method)
	}
}
