// Package nowfree keeps wall-clock reads out of fingerprint and
// cache-key computation.
//
// Invariant (DESIGN.md §14): cache keys and fingerprints are pure
// functions of corpus generation, profile revision, and request shape.
// Determinism is what makes generation-stamped invalidation sound — a
// time.Now() folded into a key makes every computation a miss (cache
// poisoning by monotonic clock) or, worse, makes two replicas disagree
// about the same logical request. The repo's 18 surviving time.Now()
// sites are all latency measurement or deadline arithmetic; this
// analyzer keeps the key paths clean by construction: no time.Now()
// inside any function whose name contains "fingerprint" or "cachekey"
// (case-insensitive), the repo's naming convention for key derivation.
package nowfree

import (
	"go/ast"
	"strings"

	"repro/tools/analyze/analysis"
	"repro/tools/analyze/passes/internal/scope"
)

// Analyzer flags wall-clock reads inside key-derivation functions.
var Analyzer = &analysis.Analyzer{
	Name: "nowfree",
	Doc: "no time.Now() inside fingerprint/cache-key computation: keys must be pure functions " +
		"of generation + revision + request shape or generation-stamped invalidation breaks",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isKeyFunc(fd.Name.Name) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				pkg, name, ok := scope.FuncCall(pass.TypesInfo, call)
				if ok && pkg == "time" && name == "Now" {
					pass.Reportf(call.Pos(),
						"time.Now() inside key-derivation function %s: a wall-clock read makes the "+
							"key non-deterministic — derive from generation/revision/request shape only",
						fd.Name.Name)
				}
				return true
			})
		}
	}
	return nil
}

// isKeyFunc matches the repo's key-derivation naming convention.
func isKeyFunc(name string) bool {
	l := strings.ToLower(name)
	return strings.Contains(l, "fingerprint") || strings.Contains(l, "cachekey")
}
