package nowfree_test

import (
	"testing"

	"repro/tools/analyze/analysistest"
)

func TestKeyFunctions(t *testing.T) {
	analysistest.Run(t, "../../testdata", "nowcase")
}
