package budgetedgo_test

import (
	"testing"

	"repro/tools/analyze/analysistest"
)

func TestSpawns(t *testing.T) {
	analysistest.Run(t, "../../testdata", "budgetcase/internal/server")
}
