// Package budgetedgo forbids unbudgeted goroutine spawns in the
// serving packages.
//
// Invariant (DESIGN.md §13): the serving scheduler owns parallelism.
// PR 8 removed the per-request worker explosion by making every
// fan-out draw workers from a sched.Budget token semaphore; a bare
// `go func` on a request path reintroduces oversubscription that the
// QPS harness then has to rediscover the hard way. A goroutine spawn
// is compliant when the spawning function visibly draws from a budget
// (a TryAcquire call in the same function — the repo idiom is
// TryAcquire → go → Release). Long-lived singletons created at
// construction time (cache fill loops, slowlog writers) are not
// request-proportional and carry //pimento:allow budgetedgo with that
// argument.
package budgetedgo

import (
	"go/ast"

	"repro/tools/analyze/analysis"
	"repro/tools/analyze/passes/internal/scope"
)

// scopePkgs: the serving substrate minus the operator layer —
// internal/algebra and internal/twig are synchronous by design (the
// scheduler parallelizes *across* plans, never inside one).
var scopePkgs = []string{
	"internal/corpus",
	"internal/engine",
	"internal/plan",
	"internal/server",
	"internal/registry",
	"internal/sched",
}

// Analyzer flags `go` statements not visibly paired with a budget draw.
var Analyzer = &analysis.Analyzer{
	Name: "budgetedgo",
	Doc: "goroutine spawns in serving packages must draw from a sched.Budget (TryAcquire in the " +
		"spawning function); unbudgeted spawns oversubscribe the scheduler — annotate " +
		"construction-time singletons with //pimento:allow budgetedgo <reason>",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !scope.PathAny(pass.Pkg.Path(), scopePkgs) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			budgeted := drawsBudget(fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if !budgeted {
					pass.Reportf(g.Pos(),
						"unbudgeted goroutine spawn in %s: draw a worker from the sched.Budget "+
							"(TryAcquire/Release) so the serving scheduler keeps ownership of "+
							"parallelism, or annotate a construction-time singleton",
						fd.Name.Name)
				}
				return true
			})
		}
	}
	return nil
}

// drawsBudget reports whether the body contains an X.TryAcquire(...)
// call. Matching is syntactic on the selector name: budgets flow
// through both the concrete *sched.Budget and the plan.WorkerBudget
// interface, and either spelling proves the function participates in
// the token protocol.
func drawsBudget(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "TryAcquire" {
			found = true
			return false
		}
		return true
	})
	return found
}
