// Package scope holds the shared type- and path-matching helpers the
// pimento analyzers use to decide what code they apply to.
//
// Package matching is by slash-aligned path *suffix* ("internal/corpus"
// matches both "repro/internal/corpus" in the real tree and the bare
// "internal/corpus" fixture packages under testdata/src), so the same
// analyzer binary checks the repository and its own test fixtures
// without knowing the module path.
package scope

import (
	"go/ast"
	"go/types"
	"strings"
)

// ServingPkgs is the request-path substrate: every package a live
// search, mutation, or profile request executes through. The ctxbg,
// snapshotonce and budgetedgo invariants apply here; offline harnesses
// (internal/inex, internal/experiments) and parsing layers are
// deliberately out of scope.
var ServingPkgs = []string{
	"internal/corpus",
	"internal/engine",
	"internal/plan",
	"internal/server",
	"internal/registry",
	"internal/sched",
	"internal/algebra",
	"internal/twig",
}

// PathMatches reports whether pkgPath equals suffix or ends with
// "/"+suffix (slash-aligned, so "internal/corpus" does not match
// "internal/corpusx").
func PathMatches(pkgPath, suffix string) bool {
	return pkgPath == suffix || strings.HasSuffix(pkgPath, "/"+suffix)
}

// PathAny reports whether pkgPath matches any suffix.
func PathAny(pkgPath string, suffixes []string) bool {
	for _, s := range suffixes {
		if PathMatches(pkgPath, s) {
			return true
		}
	}
	return false
}

// Named unwraps pointers and aliases down to a named type, returning
// its package path and name. ok is false for unnamed types and types
// from the universe scope.
func Named(t types.Type) (pkgPath, name string, ok bool) {
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Alias:
			t = types.Unalias(tt)
		case *types.Named:
			obj := tt.Obj()
			if obj.Pkg() == nil {
				return "", obj.Name(), false
			}
			return obj.Pkg().Path(), obj.Name(), true
		default:
			return "", "", false
		}
	}
}

// MethodCall resolves call as a method call, returning the receiver's
// named type (package path + type name) and the method name. ok is
// false for ordinary function calls, conversions, and calls through
// unnamed receiver types. Interface method calls resolve to the
// interface's own type.
func MethodCall(info *types.Info, call *ast.CallExpr) (recvPkg, recvType, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", "", false
	}
	selection, isMethod := info.Selections[sel]
	if !isMethod || selection.Kind() != types.MethodVal {
		return "", "", "", false
	}
	recvPkg, recvType, ok = Named(selection.Recv())
	if !ok {
		return "", "", "", false
	}
	return recvPkg, recvType, sel.Sel.Name, true
}

// FuncCall resolves call as a call of a package-level function,
// returning the function's package path and name. ok is false for
// method calls, calls of local function values, conversions and
// builtins.
func FuncCall(info *types.Info, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		// pkg.Func — reject method calls (those have a Selection).
		if _, isMethod := info.Selections[fun]; isMethod {
			return "", "", false
		}
		id = fun.Sel
	default:
		return "", "", false
	}
	fn, isFn := info.Uses[id].(*types.Func)
	if !isFn || fn.Pkg() == nil {
		return "", "", false
	}
	return fn.Pkg().Path(), fn.Name(), true
}
