// Package ctxbg forbids context.Background() and context.TODO() on
// serving paths.
//
// Invariant: every execution on the request path runs under the
// caller's context, so cancellation and deadlines reach the operator
// loops (DESIGN.md §10). A context fabricated mid-stack silently
// detaches everything below it from the request that is paying for the
// work — the exact bug class the cooperative-cancellation suites exist
// to catch at runtime. Genuinely context-free public entry points
// (library conveniences whose contract is "run to completion") carry a
// //pimento:allow ctxbg annotation naming that contract.
package ctxbg

import (
	"go/ast"

	"repro/tools/analyze/analysis"
	"repro/tools/analyze/passes/internal/scope"
)

// Analyzer flags context.Background()/context.TODO() calls inside the
// serving packages.
var Analyzer = &analysis.Analyzer{
	Name: "ctxbg",
	Doc: "forbid context.Background()/TODO() on request paths: thread the caller's context " +
		"or annotate a genuinely context-free entry point with //pimento:allow ctxbg <reason>",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !scope.PathAny(pass.Pkg.Path(), scope.ServingPkgs) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, name, ok := scope.FuncCall(pass.TypesInfo, call)
			if !ok || pkg != "context" {
				return true
			}
			if name == "Background" || name == "TODO" {
				pass.Reportf(call.Pos(),
					"context.%s() on a serving path: thread the caller's context instead "+
						"(context-free public entry points need //pimento:allow ctxbg <reason>)", name)
			}
			return true
		})
	}
	return nil
}
