package ctxbg_test

import (
	"testing"

	"repro/tools/analyze/analysistest"
)

func TestServingScope(t *testing.T) {
	analysistest.Run(t, "../../testdata", "ctxbgcase/internal/server")
}

func TestOutOfScopeIsClean(t *testing.T) {
	analysistest.Run(t, "../../testdata", "ctxbgcase/util")
}
