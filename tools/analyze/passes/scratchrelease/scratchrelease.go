// Package scratchrelease pairs pooled-scratch acquisition with release.
//
// Invariant (DESIGN.md §9): operator scratch comes from sync.Pool and
// every acquisition is paired with a release on all exits — the twig
// joiner idiom is `j := joinerPool.Get().(*joiner); defer j.release()`.
// A dropped scratch is not a leak the GC saves you from cheaply: the
// pools exist to keep steady-state allocation flat under the QPS
// harness, and one unpaired Get per request quietly regrows the heap
// the pool was bought to cap.
//
// For each p.Get() call (p of type sync.Pool) the analyzer accepts:
//
//   - the result is returned (ownership transfers to the caller —
//     the get-helper pattern; the caller's pairing is checked at its
//     own call site),
//   - the result is bound to a variable that is released in the same
//     function: a defer or plain call of a method whose name contains
//     "release" on that variable, a Put call taking it as an argument,
//     or a return of the variable.
//
// Anything else is flagged. Transfers the analyzer cannot see (scratch
// stored into a struct whose own Release handles it) carry a
// //pimento:allow scratchrelease annotation naming the releasing path.
package scratchrelease

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/tools/analyze/analysis"
	"repro/tools/analyze/passes/internal/scope"
)

// Analyzer flags sync.Pool.Get calls without a visible paired release.
var Analyzer = &analysis.Analyzer{
	Name: "scratchrelease",
	Doc: "pooled scratch (sync.Pool.Get) must be paired with a release on all exits: " +
		"defer the release method, Put it back, or return it to the caller that will",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkBody(pass, fd.Body)
		}
	}
	return nil
}

// checkBody audits every pool acquisition whose innermost enclosing
// function is body. Releases may live anywhere inside body, including
// nested closures (a cleanup closure releasing the outer scratch is
// still a pairing).
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	for _, get := range poolGets(pass, body) {
		v, bound := boundVar(pass, body, get)
		switch {
		case !bound && inReturn(body, get):
			// get-helper: ownership transfers to the caller.
		case !bound:
			pass.Reportf(get.Pos(),
				"pooled scratch acquired and dropped: bind the sync.Pool.Get result and pair it "+
					"with a release, or return it to transfer ownership")
		case !released(pass, body, v):
			pass.Reportf(get.Pos(),
				"pooled scratch %q has no paired release in this function: defer its release "+
					"method (or Put it back) so every exit path returns it to the pool",
				v.Name())
		}
	}
}

// poolGets returns the Pool.Get calls whose innermost enclosing
// function is exactly body; closure subtrees are pruned from this walk
// and audited recursively against their own bodies.
func poolGets(pass *analysis.Pass, body *ast.BlockStmt) []*ast.CallExpr {
	var gets []*ast.CallExpr
	ast.Inspect(body, func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.FuncLit:
			checkBody(pass, nn.Body)
			return false
		case *ast.CallExpr:
			if recvPkg, recvType, method, ok := scope.MethodCall(pass.TypesInfo, nn); ok &&
				recvPkg == "sync" && recvType == "Pool" && method == "Get" {
				gets = append(gets, nn)
			}
		}
		return true
	})
	return gets
}

// boundVar resolves the variable the Get result is bound to, looking
// for `v := p.Get()...` single-assignments (the result may pass
// through a type assertion first).
func boundVar(pass *analysis.Pass, body *ast.BlockStmt, get *ast.CallExpr) (*types.Var, bool) {
	var found *types.Var
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		if !contains(as.Rhs[0], get) {
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok {
			if v, ok := pass.TypesInfo.Defs[id].(*types.Var); ok {
				found = v
			} else if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok {
				found = v
			}
		}
		return false
	})
	return found, found != nil
}

// inReturn reports whether the Get call appears inside a return
// statement.
func inReturn(body *ast.BlockStmt, get *ast.CallExpr) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, r := range ret.Results {
			if contains(r, get) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// released reports whether v is visibly released inside body: a call
// (deferred or plain) of a *release-named method on v, a Put call with
// v as an argument, or a return of v.
func released(pass *analysis.Pass, body *ast.BlockStmt, v *types.Var) bool {
	usesV := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && pass.TypesInfo.Uses[id] == v
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.CallExpr:
			sel, ok := nn.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name := strings.ToLower(sel.Sel.Name)
			if strings.Contains(name, "release") && usesV(sel.X) {
				found = true
				return false
			}
			if name == "put" {
				for _, a := range nn.Args {
					if usesV(a) {
						found = true
						return false
					}
				}
			}
		case *ast.ReturnStmt:
			for _, r := range nn.Results {
				if usesV(r) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// contains reports whether needle is a node inside the tree rooted at
// haystack.
func contains(haystack ast.Node, needle ast.Node) bool {
	found := false
	ast.Inspect(haystack, func(n ast.Node) bool {
		if n == needle {
			found = true
			return false
		}
		return true
	})
	return found
}
