package scratchrelease_test

import (
	"testing"

	"repro/tools/analyze/analysistest"
)

func TestPairing(t *testing.T) {
	analysistest.Run(t, "../../testdata", "scratchcase")
}
