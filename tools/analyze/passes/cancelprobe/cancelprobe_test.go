package cancelprobe_test

import (
	"testing"

	"repro/tools/analyze/analysistest"
)

func TestOperators(t *testing.T) {
	analysistest.Run(t, "../../testdata", "cancelcase/internal/algebra")
}
