// Package cancelprobe enforces cooperative-cancellation probes in the
// operator layer (internal/algebra, internal/twig).
//
// Two rules, both earned by the -race stress suites:
//
//  1. Source operators must probe. A pull-based operator that emits
//     candidates from a slice (its Next never pulls an upstream
//     operator's Next) is the head of a chain: nothing above it will
//     ever observe a cancelled context, so its Next must call
//     (*CancelCheck).Stop (or a stop func() bool probe). Downstream
//     filter operators inherit bounded abort latency from the source's
//     stride, so pulling In.Next() inside Next is itself compliant.
//
//  2. Declared probes must fire. A function that accepts a probe — a
//     `stop func() bool` parameter or a *CancelCheck — and then runs
//     candidate loops without ever calling it has dead cancellation
//     plumbing: the twig holistic joins pass probes down exactly so
//     the per-stream merge loops stay abortable.
//
// Both rules are per-function and syntactic about loop placement (a
// probe anywhere in the body counts); the runtime stress gates remain
// the authority on abort latency.
package cancelprobe

import (
	"go/ast"
	"go/types"

	"repro/tools/analyze/analysis"
	"repro/tools/analyze/passes/internal/scope"
)

var scopePkgs = []string{"internal/algebra", "internal/twig"}

// Analyzer flags unprobed source operators and dead probes.
var Analyzer = &analysis.Analyzer{
	Name: "cancelprobe",
	Doc: "operator loops over candidate slices must carry a cancellation probe: source operators " +
		"call CancelCheck.Stop in Next, and functions handed a stop probe must actually fire it",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !scope.PathAny(pass.Pkg.Path(), scopePkgs) {
		return nil
	}

	// Group method declarations by receiver type name.
	methods := map[string]map[string]*ast.FuncDecl{} // recv type → method name → decl
	var funcs []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			funcs = append(funcs, fd)
			if name, ok := recvTypeName(fd); ok {
				if methods[name] == nil {
					methods[name] = map[string]*ast.FuncDecl{}
				}
				methods[name][fd.Name.Name] = fd
			}
		}
	}

	// Rule 1: source operators (Open + Next method set, no upstream
	// pull in either) must probe in Next.
	for typeName, ms := range methods {
		next, hasNext := ms["Next"]
		open, hasOpen := ms["Open"]
		if !hasNext || !hasOpen {
			continue
		}
		if pullsUpstream(next.Body) || pullsUpstream(open.Body) {
			continue // filter/sink operator: bounded by the chain's source
		}
		if !hasProbe(pass.TypesInfo, next.Body) {
			pass.Reportf(next.Pos(),
				"source operator %s.Next emits candidates without a cancellation probe: "+
					"call (*CancelCheck).Stop in the emit path so a dead context aborts the scan",
				typeName)
		}
	}

	// Rule 2: a declared probe parameter must fire in loop-bearing
	// functions.
	for _, fd := range funcs {
		probe, ok := probeParam(pass.TypesInfo, fd)
		if !ok || !hasLoop(fd.Body) {
			continue
		}
		if !hasProbe(pass.TypesInfo, fd.Body) {
			pass.Reportf(fd.Pos(),
				"%s takes cancellation probe %q but never fires it around its loops: "+
					"dead probes make the join uncancellable — call it or drop the parameter",
				fd.Name.Name, probe)
		}
	}
	return nil
}

// recvTypeName returns the receiver's base type name for a method decl.
func recvTypeName(fd *ast.FuncDecl) (string, bool) {
	if fd.Recv == nil || len(fd.Recv.List) != 1 {
		return "", false
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name, true
	}
	return "", false
}

// pullsUpstream reports whether the body calls <expr>.Next(...) —
// i.e. consumes from an input operator.
func pullsUpstream(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Next" {
			found = true
			return false
		}
		return true
	})
	return found
}

// hasProbe reports whether the body contains a cancellation probe
// call: X.Stop() on a CancelCheck, or a call of a func() bool value
// (the twig joins' stop parameter).
func hasProbe(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if _, recvType, method, ok := scope.MethodCall(info, call); ok &&
			method == "Stop" && recvType == "CancelCheck" {
			found = true
			return false
		}
		if id, ok := call.Fun.(*ast.Ident); ok && len(call.Args) == 0 {
			if sig, ok := info.TypeOf(id).(*types.Signature); ok && isBoolThunk(sig) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// probeParam returns the name of a probe parameter: a `func() bool`
// or a *CancelCheck.
func probeParam(info *types.Info, fd *ast.FuncDecl) (string, bool) {
	if fd.Type.Params == nil {
		return "", false
	}
	for _, field := range fd.Type.Params.List {
		t := info.TypeOf(field.Type)
		if t == nil {
			continue
		}
		isProbe := false
		if sig, ok := t.Underlying().(*types.Signature); ok && isBoolThunk(sig) {
			isProbe = true
		}
		if _, name, ok := scope.Named(t); ok && name == "CancelCheck" {
			isProbe = true
		}
		if isProbe {
			if len(field.Names) > 0 {
				return field.Names[0].Name, true
			}
			return "_", true
		}
	}
	return "", false
}

// isBoolThunk matches func() bool.
func isBoolThunk(sig *types.Signature) bool {
	return sig.Params().Len() == 0 && sig.Results().Len() == 1 &&
		types.Identical(sig.Results().At(0).Type(), types.Typ[types.Bool])
}

// hasLoop reports whether the body contains any for/range statement.
func hasLoop(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			found = true
			return false
		}
		return true
	})
	return found
}
