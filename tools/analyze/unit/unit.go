// Package unit implements the `go vet -vettool` unit-checking
// protocol for the pimento suite: cmd/go compiles each package, writes
// a JSON vet config describing it (sources, import map, export-data
// files), and invokes the tool once per package in the package's
// directory with the config path as the sole argument.
//
// The contract, reverse-engineered from cmd/go/internal/work (the
// protocol is not formally documented outside x/tools' unitchecker,
// which this package substitutes for):
//
//   - `tool -V=full` prints "<name> version <id>"; the line is the
//     tool's cache key, so <id> hashes the tool binary itself — a
//     rebuilt vettool invalidates prior vet results.
//   - A run producing findings prints them to stderr and exits 2; the
//     go command relays them and fails the vet.
//   - cfg.VetxOnly means "this package is only needed for facts"; the
//     suite is fact-free, so it writes an empty vetx and exits 0.
//   - cfg.SucceedOnTypecheckFailure reproduces vet's default tolerance
//     for uncompilable packages (the compiler reports those better).
package unit

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"

	"repro/tools/analyze/driver"
)

// vetConfig mirrors the JSON written by cmd/go for each vetted
// package. Fields the suite has no use for are omitted from parsing
// but tolerated in the input.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

// PrintVersion emits the -V=full line. The id is a hash of the tool
// binary so go vet's result cache turns over whenever the tool is
// rebuilt with different analyzers.
func PrintVersion(w io.Writer) {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				id = fmt.Sprintf("%x", h.Sum(nil))[:16]
			}
			f.Close()
		}
	}
	fmt.Fprintf(w, "pimento-analyze version pimento-%s\n", id)
}

// Run executes one unit check against the given vet config path and
// returns the process exit code: 0 clean, 1 tool failure, 2 findings.
func Run(cfgPath string, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(stderr, "pimento-analyze: reading vet config: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "pimento-analyze: parsing vet config %s: %v\n", cfgPath, err)
		return 1
	}

	// Fact-free suite: dependencies contribute nothing beyond their
	// export data, which cmd/go hands over separately.
	if cfg.VetxOnly {
		if err := writeVetx(cfg.VetxOutput); err != nil {
			fmt.Fprintf(stderr, "pimento-analyze: %v\n", err)
			return 1
		}
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(stderr, "pimento-analyze: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	pkg, info, err := typecheck(fset, files, &cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(stderr, "pimento-analyze: typechecking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	res, err := driver.RunPackage(fset, files, pkg, info)
	if err != nil {
		fmt.Fprintf(stderr, "pimento-analyze: %v\n", err)
		return 1
	}
	if err := writeVetx(cfg.VetxOutput); err != nil {
		fmt.Fprintf(stderr, "pimento-analyze: %v\n", err)
		return 1
	}
	if len(res.Findings) > 0 {
		for _, f := range res.Findings {
			fmt.Fprintf(stderr, "%s\n", f)
		}
		return 2
	}
	return 0
}

// typecheck type-checks the unit against the export data of its
// dependencies, exactly as the compiler saw them.
func typecheck(fset *token.FileSet, files []*ast.File, cfg *vetConfig) (*types.Package, *types.Info, error) {
	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		// path is already resolved through ImportMap.
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(path)
	})
	tc := &types.Config{
		Importer:  imp,
		GoVersion: cfg.GoVersion,
		Sizes:     types.SizesFor(cfg.Compiler, build()),
	}
	info := driver.NewInfo()
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	return pkg, info, err
}

func build() string {
	if arch := os.Getenv("GOARCH"); arch != "" {
		return arch
	}
	return runtime.GOARCH
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// writeVetx writes the (empty — no facts) vetx output if requested.
func writeVetx(path string) error {
	if path == "" {
		return nil
	}
	return os.WriteFile(path, []byte{}, 0o666)
}
