module repro/tools/analyze

go 1.22
