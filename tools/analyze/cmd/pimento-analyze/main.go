// Command pimento-analyze is the repository's invariant checker: a
// multichecker over the analyzers in tools/analyze/passes, usable
// three ways.
//
//	go vet -vettool=$(pimento-analyze) ./...   # unitchecker protocol, cached by go vet
//	pimento-analyze ./...                      # standalone: loads from source, exits 2 on findings
//	pimento-analyze -baseline ./...            # audit mode: findings as a checklist, exit 0
//
// The standalone modes run from the directory of the module under
// analysis (they shell out to `go list`). -list prints the suite and
// each analyzer's contract.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/tools/analyze/driver"
	"repro/tools/analyze/load"
	"repro/tools/analyze/unit"
)

func main() {
	args := os.Args[1:]
	for _, a := range args {
		// go vet probes the tool's identity before first use.
		if a == "-V=full" || a == "-V" {
			unit.PrintVersion(os.Stdout)
			return
		}
		// ...and asks for its flags as JSON (none beyond the protocol's).
		if a == "-flags" {
			fmt.Println("[]")
			return
		}
	}
	if n := len(args); n > 0 && strings.HasSuffix(args[n-1], ".cfg") {
		os.Exit(unit.Run(args[n-1], os.Stderr))
	}
	os.Exit(standalone(args))
}

func standalone(args []string) int {
	fs := flag.NewFlagSet("pimento-analyze", flag.ExitOnError)
	baseline := fs.Bool("baseline", false,
		"audit mode: print findings as a markdown checklist and exit 0 (the fix-list generator)")
	list := fs.Bool("list", false, "print the analyzer suite and each analyzer's contract")
	dir := fs.String("C", ".", "directory of the module to analyze")
	fs.Parse(args)

	if *list {
		for _, a := range driver.Analyzers() {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		fmt.Printf("%-15s %s\n", driver.AllowCheckName,
			"annotation hygiene: //pimento:allow needs a known analyzer + reason, and must suppress something")
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loaded, err := load.Load(*dir, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pimento-analyze: %v\n", err)
		return 1
	}

	var findings []driver.Finding
	var annotations int
	suppressed := 0
	for _, t := range loaded.Targets {
		res, err := driver.RunPackage(loaded.Fset, t.Files, t.Pkg, t.Info)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pimento-analyze: %v\n", err)
			return 1
		}
		findings = append(findings, res.Findings...)
		suppressed += res.Suppressed
		for _, e := range res.Annotations {
			if annotations == 0 {
				fmt.Printf("# suppressions in effect (//pimento:allow <analyzer> <reason>)\n")
			}
			annotations++
			fmt.Printf("#   %s:%d %s — %s\n", e.File, e.Line, e.Analyzer, e.Reason)
		}
	}

	if *baseline {
		fmt.Printf("# pimento-analyze baseline: %d finding(s) across %d package(s), %d suppressed\n",
			len(findings), len(loaded.Targets), suppressed)
		for _, f := range findings {
			fmt.Printf("- [ ] %s\n", f)
		}
		return 0
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s\n", f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "pimento-analyze: %d finding(s) (%d suppressed by annotations)\n",
			len(findings), suppressed)
		return 2
	}
	return 0
}
