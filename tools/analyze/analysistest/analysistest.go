// Package analysistest is a small fixture harness in the spirit of
// golang.org/x/tools/go/analysis/analysistest: fixture packages live
// under testdata/src/<importpath>/ and declare their expected findings
// inline, so each analyzer's test reads as annotated example code.
//
// Expectations are trailing comments of the form
//
//	// want <analyzer> "substring"
//
// one per line that must be flagged. The harness runs the FULL suite
// (driver.RunPackage, suppression included) over each fixture package
// and asserts an exact match: every want is hit by a finding of that
// analyzer whose message contains the quoted substring, and no finding
// lands on a line without a want. //pimento:allow annotations in
// fixtures are live — a line carrying one and no want asserts the
// suppression is honored (and the annotation counted used, or the
// stale-annotation check itself fires).
//
// Stdlib imports are type-checked from $GOROOT source ("source"
// compiler importer — the build environment has no precompiled export
// data for a bare GOPATH-style fixture tree); fixture-to-fixture
// imports resolve within testdata/src.
package analysistest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/tools/analyze/driver"
)

// Run analyzes the fixture package at testdata/src/<pkgPath> (testdata
// resolved relative to the calling test's directory via rel, typically
// "testdata" or "../../testdata") and asserts its // want expectations.
func Run(t *testing.T, testdata string, pkgPath string) {
	t.Helper()
	abs, err := filepath.Abs(testdata)
	if err != nil {
		t.Fatal(err)
	}
	ld := &fixtureLoader{
		t:       t,
		srcRoot: filepath.Join(abs, "src"),
		fset:    token.NewFileSet(),
		std:     importer.ForCompiler(token.NewFileSet(), "source", nil),
		cache:   map[string]*types.Package{},
	}
	files, pkg, info := ld.check(pkgPath, true)

	res, err := driver.RunPackage(ld.fset, files, pkg, info)
	if err != nil {
		t.Fatalf("RunPackage(%s): %v", pkgPath, err)
	}

	wants := collectWants(t, ld.fset, files)
	matched := make([]bool, len(wants))
	for _, f := range res.Findings {
		hit := false
		for i, w := range wants {
			if matched[i] || w.file != f.Pos.Filename || w.line != f.Pos.Line {
				continue
			}
			if w.analyzer == f.Analyzer && strings.Contains(f.Message, w.substr) {
				matched[i] = true
				hit = true
				break
			}
		}
		if !hit {
			t.Errorf("unexpected finding at %s:%d: [%s] %s",
				filepath.Base(f.Pos.Filename), f.Pos.Line, f.Analyzer, f.Message)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("missing finding at %s:%d: want [%s] containing %q",
				filepath.Base(w.file), w.line, w.analyzer, w.substr)
		}
	}
}

type fixtureLoader struct {
	t       *testing.T
	srcRoot string
	fset    *token.FileSet
	std     types.Importer
	cache   map[string]*types.Package
}

// check type-checks a fixture package; target selects full info
// collection for the package under test.
func (ld *fixtureLoader) check(pkgPath string, target bool) ([]*ast.File, *types.Package, *types.Info) {
	ld.t.Helper()
	dir := filepath.Join(ld.srcRoot, filepath.FromSlash(pkgPath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		ld.t.Fatalf("fixture package %s: %v", pkgPath, err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			ld.t.Fatalf("parsing fixture %s: %v", e.Name(), err)
		}
		files = append(files, f)
	}
	var info *types.Info
	if target {
		info = driver.NewInfo()
	}
	tc := &types.Config{Importer: importerFunc(ld.importPkg)}
	pkg, err := tc.Check(pkgPath, ld.fset, files, info)
	if err != nil {
		ld.t.Fatalf("typechecking fixture %s: %v", pkgPath, err)
	}
	ld.cache[pkgPath] = pkg
	return files, pkg, info
}

// importPkg resolves an import from inside a fixture: sibling fixture
// packages win, everything else is stdlib.
func (ld *fixtureLoader) importPkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := ld.cache[path]; ok {
		return pkg, nil
	}
	if st, err := os.Stat(filepath.Join(ld.srcRoot, filepath.FromSlash(path))); err == nil && st.IsDir() {
		_, pkg, _ := ld.check(path, false)
		return pkg, nil
	}
	return ld.std.Import(path)
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// want is one parsed expectation comment.
type want struct {
	file     string
	line     int
	analyzer string
	substr   string
}

// Both comment forms are accepted; the block form lets a line that
// already carries a //pimento:allow line comment still declare an
// expectation: /* want ... */ //pimento:allow ...
var wantRE = regexp.MustCompile(`(?://|/\*)\s*want\s+(\S+)\s+("(?:[^"\\]|\\.)*")`)

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []want {
	t.Helper()
	var wants []want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				substr, err := strconv.Unquote(m[2])
				if err != nil {
					t.Fatalf("bad want expectation %q: %v", c.Text, err)
				}
				pos := fset.Position(c.Pos())
				wants = append(wants, want{pos.Filename, pos.Line, m[1], substr})
			}
		}
	}
	return wants
}
