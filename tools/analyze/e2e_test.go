// End-to-end test of the vettool protocol: build the real
// pimento-analyze binary, point `go vet -vettool` at a known-bad
// module, and assert the violations come back through cmd/go with the
// right analyzer names and a failing exit status. This is the test
// that keeps the -V=full / -flags / vet.cfg plumbing honest — the unit
// tests all go through the in-process driver and would not notice a
// broken protocol handshake.
package analyze_test

import (
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles the vettool once per test process.
func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "pimento-analyze")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/pimento-analyze")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building pimento-analyze: %v\n%s", err, out)
	}
	return bin
}

func TestVettoolProtocol(t *testing.T) {
	bin := buildTool(t)

	t.Run("version", func(t *testing.T) {
		out, err := exec.Command(bin, "-V=full").Output()
		if err != nil {
			t.Fatalf("-V=full: %v", err)
		}
		// cmd/go parses this as "<name> version <id>" and uses the line
		// as the tool's cache key; id must not be "devel".
		f := strings.Fields(strings.TrimSpace(string(out)))
		if len(f) != 3 || f[1] != "version" || f[2] == "devel" {
			t.Fatalf("-V=full output %q does not satisfy the toolID contract", out)
		}
	})

	t.Run("flags", func(t *testing.T) {
		out, err := exec.Command(bin, "-flags").Output()
		if err != nil {
			t.Fatalf("-flags: %v", err)
		}
		if strings.TrimSpace(string(out)) != "[]" {
			t.Fatalf("-flags output %q, want the empty JSON flag list", out)
		}
	})

	t.Run("govet", func(t *testing.T) {
		cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
		cmd.Dir = filepath.Join("testdata", "badmod")
		out, err := cmd.CombinedOutput()
		if err == nil {
			t.Fatalf("go vet -vettool passed over the known-bad module:\n%s", out)
		}
		for _, wantStr := range []string{
			"[ctxbg]", "context.Background",
			"[budgetedgo]", "unbudgeted goroutine spawn",
			"[nowfree]", "non-deterministic",
		} {
			if !strings.Contains(string(out), wantStr) {
				t.Errorf("go vet output missing %q:\n%s", wantStr, out)
			}
		}
	})
}

func TestStandaloneMode(t *testing.T) {
	bin := buildTool(t)
	badmod, err := filepath.Abs(filepath.Join("testdata", "badmod"))
	if err != nil {
		t.Fatal(err)
	}

	t.Run("findings", func(t *testing.T) {
		cmd := exec.Command(bin, "-C", badmod, "./...")
		out, err := cmd.CombinedOutput()
		var exit *exec.ExitError
		if !errors.As(err, &exit) || exit.ExitCode() != 2 {
			t.Fatalf("standalone run: err=%v (want exit status 2)\n%s", err, out)
		}
		for _, wantStr := range []string{"[ctxbg]", "[budgetedgo]", "[nowfree]", "3 finding(s)"} {
			if !strings.Contains(string(out), wantStr) {
				t.Errorf("standalone output missing %q:\n%s", wantStr, out)
			}
		}
	})

	t.Run("baseline-exits-zero", func(t *testing.T) {
		cmd := exec.Command(bin, "-C", badmod, "-baseline", "./...")
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("baseline mode must exit 0 even with findings: %v\n%s", err, out)
		}
		if !strings.Contains(string(out), "- [ ] ") {
			t.Errorf("baseline output is not a checklist:\n%s", out)
		}
	})

	t.Run("clean-tree-gate", func(t *testing.T) {
		// The repository itself must be finding-free: this is the same
		// zero-finding gate `make ci` enforces, kept here so `go test`
		// inside tools/analyze catches a regression without the Makefile.
		root, err := filepath.Abs(filepath.Join("..", ".."))
		if err != nil {
			t.Fatal(err)
		}
		if _, statErr := os.Stat(filepath.Join(root, "go.mod")); statErr != nil {
			t.Skipf("repository root not found at %s", root)
		}
		cmd := exec.Command(bin, "-C", root, "./...")
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Errorf("pimento-analyze over the repository found violations:\n%s", out)
		}
	})
}
