// Package analysis is a self-contained, stdlib-only stand-in for the
// core of golang.org/x/tools/go/analysis, shaped so the pimento
// analyzers read like ordinary x/tools analyzers. The build
// environment pins the main module to the standard library (no module
// proxy), so vendoring or requiring x/tools is not an option; the
// subset implemented here — Analyzer, Pass, Diagnostic, Reportf — is
// exactly what a vet-style multichecker needs. If the real x/tools
// ever becomes available, each pass ports by changing one import path.
//
// Deliberate differences from x/tools:
//
//   - No Facts. The pimento invariants are all intra-package; the
//     unitchecker driver still writes (empty) vetx files so `go vet`
//     result caching keeps working.
//   - No Requires/ResultOf. Passes walk their files with ast.Inspect.
//   - Suppression (`//pimento:allow`) is a driver concern layered on
//     top (see package allow), not part of the analyzer contract.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer is one static check: a name, a one-paragraph contract,
// and a Run function applied once per package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //pimento:allow annotations. Lower-case, no spaces.
	Name string
	// Doc states the invariant the analyzer enforces and what a
	// finding means. The first sentence is the summary line.
	Doc string
	// Run performs the check on one package and reports findings via
	// pass.Report/Reportf. A non-nil error aborts the whole run (it
	// means the analyzer itself failed, not that the code is bad).
	Run func(*Pass) error
}

// A Pass provides one analyzer with one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one finding. The driver owns filtering
	// (test-file skipping, //pimento:allow suppression) and output.
	Report func(Diagnostic)
}

// Reportf reports a finding at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding, positioned inside the package's Fset.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}
