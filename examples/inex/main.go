// INEX effectiveness: the Section 7.1 experiment on one topic.
//
// It builds the synthetic IEEE-style collection for topic 131 (abstracts
// by Jiawei Han about data mining), derives the profile from the topic
// narrative — the relaxation scoping rule and the keyword OR over "data
// cube" / "association rule" — and contrasts what the system retrieves
// with and without the profile against the planted assessment, then
// prints the full Table 1 reproduction.
//
//	go run ./examples/inex
package main

import (
	"fmt"
	"log"

	"repro/internal/engine"
	"repro/internal/inex"
	"repro/internal/plan"
	"repro/internal/text"
)

func main() {
	var topic131 inex.Spec
	for _, s := range inex.Topics() {
		if s.ID == 131 {
			topic131 = s
		}
	}
	fmt.Printf("topic %d: %s\n", topic131.ID, topic131.Title)
	fmt.Printf("query phrase %q, narrative terms %v\n\n",
		topic131.Phrase, topic131.Narrative)

	doc, assessed := inex.BuildCollection(topic131, 42)
	fmt.Printf("collection: %d articles, %d assessed-relevant components\n\n",
		len(doc.ElementsByTag("article")), len(assessed))

	e := engine.New(doc, text.DefaultPipeline)
	q := inex.TopicQuery(topic131, "abs")
	prof := inex.TopicProfile(topic131, "abs")
	fmt.Println("query: ", q)
	fmt.Println("profile:")
	for _, sr := range prof.SRs {
		fmt.Println("  ", sr)
	}
	for _, k := range prof.KORs {
		fmt.Println("  ", k)
	}

	for _, personalized := range []bool{false, true} {
		req := engine.Request{Query: q, K: 5, Strategy: plan.Push}
		label := "without profile"
		if personalized {
			req.Profile = prof
			label = "with profile"
		}
		resp, err := e.Search(req)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ntop-5 abstracts %s:\n", label)
		for i, r := range resp.Results {
			mark := " "
			if v, _ := doc.AttrValue(r.Node, "assessed"); v == "yes" {
				mark = "*"
			}
			fmt.Printf("  %d.%s S=%.3f K=%.3f  %s\n", i+1, mark, r.S, r.K, r.Snippet)
		}
		fmt.Println("  (* = assessed relevant)")
	}

	fmt.Println("\n== full Table 1 reproduction ==")
	rows, err := inex.RunTable1(42, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(inex.FormatTable(rows))
}
