// Quickstart: the paper's running example end to end.
//
// It loads the Fig. 1 car-sale database, runs the introduction's query Q
// with and without the Fig. 2 profile (Section 6.2's p2/p3 subset), and
// prints how personalization changes the answers: the query flock
// broadens the result, keyword ordering rules put the "best bid" NYC car
// on top, and optional predicates boost american / low-mileage cars.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	pimento "repro"
	"repro/internal/workload"
)

func main() {
	eng, err := pimento.OpenString(workload.Fig1XML)
	if err != nil {
		log.Fatal(err)
	}

	q, err := pimento.ParseQuery(
		`//car[./description[. ftcontains "good condition" and . ftcontains "low mileage"] and price < 2000]`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("query Q:", q)

	fmt.Println("\n--- without a profile ---")
	resp, err := eng.Search(q, nil, pimento.WithK(5))
	if err != nil {
		log.Fatal(err)
	}
	printResults(resp)

	prof, err := pimento.ParseProfile(workload.Plan1ProfileSrc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n--- with the Fig. 2 profile (rules p2, p3, ω1, ω4, ω5) ---")
	resp, err = eng.Search(q, prof, pimento.WithK(5))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("applied scoping rules:", resp.AppliedSRs)
	fmt.Println("rewritten query:", resp.EncodedQuery)
	printResults(resp)

	fmt.Println("\nThe profile broadened the answer set (the outer-joined")
	fmt.Println("\"low mileage\" no longer filters) and the keyword ordering")
	fmt.Println("rules put the best-bid car located in NYC first, regardless")
	fmt.Println("of its base query score.")
}

func printResults(resp *pimento.Response) {
	if len(resp.Results) == 0 {
		fmt.Println("  (no answers)")
		return
	}
	for i, r := range resp.Results {
		fmt.Printf("  %d. S=%.3f K=%.3f  %s\n", i+1, r.S, r.K, r.Snippet)
	}
	fmt.Printf("  [%d pruned, %v]\n", resp.TotalPruned, resp.Elapsed)
}
