// XMark performance: the Section 7.2 setup at example scale.
//
// It generates a ~1 MB XMark-style auction document, runs the Fig. 5
// query (persons with business = Yes) under the Fig. 5 ordering rules
// (π1–π4 keyword ORs, π5 the age-33 value OR), and compares the four
// plan strategies of Fig. 7, printing per-operator statistics for the
// winning Push plan.
//
//	go run ./examples/xmark
package main

import (
	"fmt"
	"log"

	pimento "repro"
	"repro/internal/workload"
	"repro/internal/xmark"
)

func main() {
	doc := xmark.GenerateSized(xmark.Config{Seed: 42}, 1024*1024)
	fmt.Printf("document: %s, %d nodes, %d persons\n",
		doc, doc.Len(), len(doc.ElementsByTag("person")))

	eng := pimento.OpenDocument(doc, pimento.WithStemming(false))
	q := workload.Fig5Query()
	prof := workload.Fig5Profile(4)
	fmt.Println("query:", q)
	fmt.Println("ordering rules: π1..π4 (male / United States / College / Phoenix), π5 (age 33)")

	strategies := []struct {
		name string
		s    pimento.Strategy
	}{
		{"NtpkP (naive)", pimento.Naive},
		{"NS-ILtpkP", pimento.InterleaveNoSort},
		{"S-ILtpkP", pimento.InterleaveSort},
		{"PtpkP (push)", pimento.Push},
	}
	var pushResp *pimento.Response
	for _, st := range strategies {
		resp, err := eng.Search(q, prof, pimento.WithK(10), pimento.WithStrategy(st.s))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%-14s %8v   pruned=%d\n", st.name, resp.Elapsed, resp.TotalPruned)
		if st.s == pimento.Push {
			pushResp = resp
		}
	}

	fmt.Println("\ntop answers (Push plan):")
	for i, r := range pushResp.Results[:5] {
		age, _ := eng.Document().DeepValue(r.Node, "age")
		fmt.Printf("  %d. K=%.3f S=%.3f age=%-3s %s\n", i+1, r.K, r.S, age, r.Snippet)
	}

	fmt.Println("\nPush plan operators:")
	for _, s := range pushResp.Stats {
		fmt.Printf("  %-55s in=%-6d out=%-6d pruned=%d\n", s.Name, s.In, s.Out, s.Pruned)
	}
}
