// Static analysis: the Section 5 machinery on the paper's own examples.
//
// Part 1 shows scoping-rule conflicts: p1 conflicts with p2 w.r.t. Q, p1
// and p3 conflict with each other (a cycle), and priorities fix the
// application order, yielding the query flock.
//
// Part 2 shows ordering-rule ambiguity: {ω1, ω2} admit a database (a red
// high-mileage car vs a blue low-mileage car) where the preference is
// contradictory; the alternating-cycle detector (Lemma 5.1) finds it,
// and priorities resolve it.
//
//	go run ./examples/staticanalysis
package main

import (
	"fmt"
	"log"

	pimento "repro"
)

const query = `//car[./description[. ftcontains "good condition" and . ftcontains "low mileage"] and price < 2000]`

func main() {
	q, err := pimento.ParseQuery(query)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== Part 1: scoping-rule conflicts (Section 5.1) ==")
	unprioritized, err := pimento.ParseProfile(`
sr p1: if pc(car, description) & ftcontains(description, "low mileage") then remove ftcontains(car, "good condition")
sr p2: if pc(car, description) & ftcontains(description, "good condition") then add ftcontains(description, "american")
sr p3: if pc(car, description) & ftcontains(description, "good condition") then remove ftcontains(description, "low mileage")
`)
	if err != nil {
		log.Fatal(err)
	}
	pa := pimento.Analyze(unprioritized, q)
	fmt.Println("without priorities:", pa.ConflictErr)

	prioritized, err := pimento.ParseProfile(`
sr p1 priority 1: if pc(car, description) & ftcontains(description, "low mileage") then remove ftcontains(car, "good condition")
sr p2 priority 2: if pc(car, description) & ftcontains(description, "good condition") then add ftcontains(description, "american")
sr p3 priority 3: if pc(car, description) & ftcontains(description, "good condition") then remove ftcontains(description, "low mileage")
`)
	if err != nil {
		log.Fatal(err)
	}
	pa = pimento.Analyze(prioritized, q)
	fmt.Println("with priorities p1 < p2 < p3:")
	fmt.Println("  applied:", pa.Applied, "(p1 removed the phrase p2/p3 need)")
	for i, fq := range pa.Flock {
		fmt.Printf("  flock[%d]: %s\n", i, fq)
	}

	fmt.Println("\n== Part 2: ordering-rule ambiguity (Section 5.2) ==")
	ambiguous, err := pimento.ParseProfile(`
vor w1: x.tag = car & y.tag = car & x.color = "red" & y.color != "red" => x < y
vor w2: x.tag = car & y.tag = car & x.mileage < y.mileage => x < y
`)
	if err != nil {
		log.Fatal(err)
	}
	rep := pimento.Analyze(ambiguous, q).Ambiguity
	fmt.Println("ω1 (red preferred) + ω2 (lower mileage preferred):")
	fmt.Println("  ambiguous:", rep.Ambiguous)
	fmt.Println("  alternating cycle:", rep.Cycle)
	fmt.Println("  ", rep.Suggestion)

	resolved, err := pimento.ParseProfile(`
vor w1 priority 2: x.tag = car & y.tag = car & x.color = "red" & y.color != "red" => x < y
vor w2 priority 1: x.tag = car & y.tag = car & x.mileage < y.mileage => x < y
`)
	if err != nil {
		log.Fatal(err)
	}
	rep = pimento.Analyze(resolved, q).Ambiguity
	fmt.Println("with priority 1 to ω2 and 2 to ω1 (the paper's fix):")
	fmt.Println("  ambiguous:", rep.Ambiguous)
	fmt.Println("  (low-mileage cars first; all else equal, red before non-red)")
}
