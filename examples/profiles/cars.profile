# A clean car-shopping profile (the paper's Fig. 2, with priorities
# assigned so the ordering rules are unambiguous). `pimento vet` should
# report no error-severity diagnostics.
order colors: red > blue > green
sr p1 priority 1: if pc(car, description) & ftcontains(description, "low mileage") then remove ftcontains(car, "good condition")
sr p2 priority 2: if pc(car, description) & ftcontains(description, "good condition") then add ftcontains(description, "american")
vor w1 priority 2: x.tag = car & y.tag = car & x.color = "red" & y.color != "red" => x < y
vor w2 priority 1: x.tag = car & y.tag = car & x.mileage < y.mileage => x < y
vor w6 priority 3: x.tag = car & y.tag = car & colors(x.color, y.color) => x < y
kor w4: x.tag = car & y.tag = car & ftcontains(x, "best bid") => x < y
rank K,V,S
