# Section 5.2's ambiguous pair, unprioritized: w1 prefers red cars, w2
# prefers lower mileage. A red high-mileage car and a non-red
# low-mileage car are each preferred to the other, so the constraint
# graph has an alternating cycle (Lemma 5.1) and `pimento vet` reports
# the VOR001 error with the cycle walk as its witness (exit status 1).
vor w1: x.tag = car & y.tag = car & x.color = "red" & y.color != "red" => x < y
vor w2: x.tag = car & y.tag = car & x.mileage < y.mileage => x < y
rank K,V,S
