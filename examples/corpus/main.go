// Corpus search: personalized search over a collection of documents —
// the setting of the paper's INEX study, where the "database" is a set
// of IEEE articles rather than one document.
//
// It builds a small corpus of dealer listings, runs one personalized
// query across all of them in parallel, shows the globally merged
// ranking, and round-trips one engine through a binary snapshot.
//
//	go run ./examples/corpus
package main

import (
	"bytes"
	"fmt"
	"log"

	pimento "repro"
)

var listings = map[string]string{
	"brooklyn.xml": `<dealer><car>
	  <description>family sedan in good condition, best bid wins, NYC pickup</description>
	  <price>1200</price><color>red</color><mileage>42000</mileage>
	</car></dealer>`,
	"queens.xml": `<dealer><car>
	  <description>good condition hatchback, one owner</description>
	  <price>900</price><color>blue</color><mileage>18000</mileage>
	</car><car>
	  <description>project car, needs work</description>
	  <price>300</price><color>red</color><mileage>120000</mileage>
	</car></dealer>`,
	"albany.xml": `<dealer><car>
	  <description>good condition wagon, best bid considered</description>
	  <price>1500</price><color>green</color><mileage>36000</mileage>
	</car></dealer>`,
}

func main() {
	c := pimento.NewCorpus()
	for name, src := range listings {
		if err := c.AddXML(name, src); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("corpus: %d documents\n\n", c.Len())

	q := pimento.MustParseQuery(`//car[./description[. ftcontains "good condition"] and price < 2000]`)
	prof := pimento.MustParseProfile(`
vor w2: x.tag = car & y.tag = car & x.mileage < y.mileage => x < y
kor w4: x.tag = car & y.tag = car & ftcontains(x, "best bid") => x < y
kor w5: x.tag = car & y.tag = car & ftcontains(x, "NYC") => x < y
rank K,V,S`)

	resp, err := c.Search(q, prof, pimento.WithK(10))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("searched %d documents in %v:\n", resp.DocsSearched, resp.Elapsed)
	for i, r := range resp.Results {
		fmt.Printf("  %d. [%s] K=%.3f S=%.3f  %s\n", i+1, r.DocName, r.K, r.S, r.Snippet)
	}

	// Snapshot round trip: index once, reopen instantly elsewhere.
	eng, err := pimento.OpenString(listings["brooklyn.xml"])
	if err != nil {
		log.Fatal(err)
	}
	var snap bytes.Buffer
	if err := eng.Save(&snap); err != nil {
		log.Fatal(err)
	}
	snapBytes := snap.Len()
	eng2, err := pimento.LoadEngine(&snap)
	if err != nil {
		log.Fatal(err)
	}
	r2, err := eng2.Search(q, prof, pimento.WithK(3))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsnapshot round trip: %d bytes, %d answers from the reloaded engine\n",
		snapBytes, len(r2.Results))
}
