// Package pimento is a Go implementation of PIMENTO — personalized XML
// search as described in "Personalizing XML Search in PIMENTO"
// (Amer-Yahia, Fundulaki, Lakshmanan; ICDE 2007).
//
// PIMENTO evaluates extended tree pattern queries (structural, value and
// full-text predicates) over XML documents and personalizes them with
// user profiles made of scoping rules (which broaden or narrow the query
// by rewriting) and ordering rules (which override the ranking). Query
// evaluation uses OR-aware top-k pruning so personalization adds
// negligible overhead.
//
// Quick start:
//
//	eng, err := pimento.OpenString(carSaleXML)
//	q, err := pimento.ParseQuery(`//car[./description[. ftcontains "good condition"] and price < 2000]`)
//	prof, err := pimento.ParseProfile(`
//	    sr p2 priority 1: if pc(car, description) & ftcontains(description, "good condition") then add ftcontains(description, "american")
//	    kor w4: x.tag = car & y.tag = car & ftcontains(x, "best bid") => x < y
//	    rank K,V,S`)
//	resp, err := eng.Search(q, prof, pimento.WithK(5))
//	for _, r := range resp.Results { fmt.Println(r.Path, r.S, r.K) }
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduction of the paper's Table 1 and Figures 6–7.
package pimento

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/corpus"
	"repro/internal/engine"
	"repro/internal/index"
	"repro/internal/plan"
	"repro/internal/profile"
	"repro/internal/server"
	"repro/internal/text"
	"repro/internal/tpq"
	"repro/internal/xmldoc"
)

// Query is an extended tree pattern query (Section 3 of the paper).
type Query = tpq.Query

// Profile is a user profile: scoping rules, value-based and
// keyword-based ordering rules, and named preference orders.
type Profile = profile.Profile

// Result is one ranked answer.
type Result = engine.Result

// Response is a search outcome with personalization metadata.
type Response = engine.Response

// ProfileAnalysis reports the static analyses of Section 5 for a profile
// against a query.
type ProfileAnalysis = engine.ProfileAnalysis

// Document is a parsed XML document.
type Document = xmldoc.Document

// Strategy selects a physical plan shape (Fig. 7 of the paper).
type Strategy = plan.Strategy

// Plan strategies, in the paper's Fig. 7 order. Push is the default and
// the paper's best performer.
const (
	Naive            = plan.Naive
	InterleaveNoSort = plan.InterleaveNoSort
	InterleaveSort   = plan.InterleaveSort
	Push             = plan.Push
	PushDeep         = plan.PushDeep
)

// KeywordQuery builds a content-only query (INEX's "CO" topic kind —
// Section 7.1: "The INEX topics consider either content only (i.e.,
// keywords) or content and structure"): any element whose subtree
// contains every phrase, ranked by relevance.
func KeywordQuery(phrases ...string) (*Query, error) {
	if len(phrases) == 0 {
		return nil, fmt.Errorf("pimento: keyword query needs at least one phrase")
	}
	q := tpq.NewQuery("*", tpq.Descendant)
	for _, p := range phrases {
		if strings.TrimSpace(p) == "" {
			return nil, fmt.Errorf("pimento: empty keyword phrase")
		}
		q.Nodes[0].FT = append(q.Nodes[0].FT, tpq.FTPred{Phrase: p})
	}
	return q, nil
}

// ParseQuery parses the query language, e.g.
//
//	//car[./description[. ftcontains "good condition"] and price < 2000]
//	//article[about(.//au, "Jiawei Han")]//abs[about(., "data mining")]
func ParseQuery(src string) (*Query, error) { return tpq.Parse(src) }

// MustParseQuery is ParseQuery for known-good literals; it panics on error.
func MustParseQuery(src string) *Query { return tpq.MustParse(src) }

// ParseProfile parses the profile DSL (see the profile package docs):
// one sr / vor / kor / order / rank declaration per line.
func ParseProfile(src string) (*Profile, error) { return profile.ParseProfile(src) }

// MustParseProfile is ParseProfile for known-good literals.
func MustParseProfile(src string) *Profile { return profile.MustParseProfile(src) }

// Engine answers personalized queries over one indexed XML document.
type Engine struct {
	e *engine.Engine
	// cache, when non-nil (WithCache), answers repeated identical
	// searches from an LRU with single-flight deduplication.
	cache *server.ResultCache
}

// Options configure Open* and Search.
type options struct {
	pipeline  text.Pipeline
	k         int
	strategy  Strategy
	literal   bool
	twig      bool
	access    AccessPath
	par       int
	thesaurus *text.Thesaurus
	thWeight  float64
	scorer    index.Scorer
	cacheSize int
	deadline  time.Duration
}

// Option customizes engine construction or a search.
type Option func(*options)

// WithStemming toggles Porter stemming in the text pipeline (on by
// default, as considered in the paper's Section 7.1).
func WithStemming(on bool) Option {
	return func(o *options) { o.pipeline.Stem = on }
}

// WithStopwords drops common English stopwords during indexing.
func WithStopwords() Option {
	return func(o *options) { o.pipeline.DropStopwords = true }
}

// WithK sets the result size (default 10).
func WithK(k int) Option { return func(o *options) { o.k = k } }

// WithStrategy selects the physical plan (default Push).
func WithStrategy(s Strategy) Option { return func(o *options) { o.strategy = s } }

// WithLiteralRewrite evaluates the query flock by literal rewriting
// instead of the single-plan encoding (slower; for comparison).
func WithLiteralRewrite() Option { return func(o *options) { o.literal = true } }

// WithTwigAccess uses the holistic twig structural semijoin as the
// access path instead of scan + per-candidate matching — faster on
// structure-heavy queries over large documents. Legacy shorthand for
// WithAccessPath(AccessTwigJoin).
func WithTwigAccess() Option { return func(o *options) { o.twig = true } }

// AccessPath selects how a plan produces distinguished-node candidates:
// AccessAuto (tag-statistics cost estimate, the default), AccessScan
// (stream the tag's index list, match per candidate), or AccessTwigJoin
// (holistic structural join with dataguide pruning).
type AccessPath = plan.AccessPath

// Access-path values for WithAccessPath.
const (
	AccessAuto     = plan.AccessAuto
	AccessScan     = plan.AccessScan
	AccessTwigJoin = plan.AccessTwigJoin
)

// WithAccessPath selects the candidate access path explicitly; the
// default AccessAuto picks twigjoin for structural queries whose tag
// lists are cheap to stream relative to the scan's candidate count,
// and scan otherwise.
func WithAccessPath(a AccessPath) Option { return func(o *options) { o.access = a } }

// WithParallelism sets how many workers execute the physical plan: 0
// (the default) uses GOMAXPROCS, scaled down when the document yields
// few candidates; 1 forces the sequential reference path; n >= 2 forces
// n workers. The ranked answers are identical at every setting — only
// wall-clock time changes.
func WithParallelism(n int) Option { return func(o *options) { o.par = n } }

// Thesaurus maps phrases to synonyms for query expansion; build one with
// NewThesaurus / ParseThesaurus.
type Thesaurus = text.Thesaurus

// NewThesaurus returns an empty thesaurus.
func NewThesaurus() *Thesaurus { return text.NewThesaurus() }

// ParseThesaurus reads the line format "phrase = synonym, synonym".
func ParseThesaurus(src string) (*Thesaurus, error) { return text.ParseThesaurus(src) }

// WithThesaurus expands required full-text predicates with optional
// synonym predicates at the given weight (synonym-only matches rank
// below exact matches). Use weight 0 for the default of 0.5.
func WithThesaurus(t *Thesaurus, weight float64) Option {
	return func(o *options) { o.thesaurus = t; o.thWeight = weight }
}

// Scorer is the pluggable base relevance function S — the paper opens
// with the argument that "there is no one scoring function that fits
// all". Engine construction accepts WithScorer; TFIDF (the default),
// BM25 and Boolean are provided.
type Scorer = index.Scorer

// TFIDF is the default scorer: tf/(tf+1) · idf, bounded by 1.
func TFIDF() Scorer { return index.TFIDFScorer{} }

// BM25 is a length-free BM25 variant; k1 <= 0 selects the default 1.2.
func BM25(k1 float64) Scorer { return index.BM25Scorer{K1: k1} }

// Boolean scores every match 1 — pure boolean retrieval.
func Boolean() Scorer { return index.BooleanScorer{} }

// WithScorer selects the base relevance function at engine construction
// (it has no effect as a Search option).
func WithScorer(s Scorer) Option { return func(o *options) { o.scorer = s } }

// WithCache enables an engine-level result cache of n entries at
// construction time (it has no effect as a Search option). Repeated
// identical (query, profile, options) searches are answered from the
// cache — the response is marked Cached and is identical to a cold
// execution — and concurrent identical searches execute only once
// (single-flight). n <= 0 disables caching.
func WithCache(n int) Option { return func(o *options) { o.cacheSize = n } }

// WithDeadline bounds one Search call: when the deadline expires before
// evaluation finishes, the plan's operator loops abort cooperatively
// and Search returns context.DeadlineExceeded — never a silently
// truncated answer list. Use SearchContext to plumb an existing
// context instead.
func WithDeadline(d time.Duration) Option { return func(o *options) { o.deadline = d } }

func collect(opts []Option) options {
	o := options{pipeline: text.DefaultPipeline}
	for _, f := range opts {
		f(&o)
	}
	return o
}

// Open parses and indexes an XML document from r.
func Open(r io.Reader, opts ...Option) (*Engine, error) {
	o := collect(opts)
	e, err := engine.FromXML(r, o.pipeline)
	if err != nil {
		return nil, err
	}
	if o.scorer != nil {
		e.Index().SetScorer(o.scorer)
	}
	e.UseAnalysisCache(engine.NewAnalysisCache(analysisCacheSize))
	return &Engine{e: e, cache: newCache(o)}, nil
}

// analysisCacheSize is the per-engine analysis-verdict cache capacity:
// profile/query analysis verdicts are small, so repeated searches with
// the same profile skip the Section 5 analyses and flock encoding.
const analysisCacheSize = 128

// newCache builds the optional engine-level result cache.
func newCache(o options) *server.ResultCache {
	if o.cacheSize <= 0 {
		return nil
	}
	return server.NewResultCache(o.cacheSize)
}

// OpenString indexes an XML document held in a string.
func OpenString(src string, opts ...Option) (*Engine, error) {
	return Open(strings.NewReader(src), opts...)
}

// ParseDocument parses XML into a Document without indexing it (use
// OpenDocument or Corpus.Add to index it).
func ParseDocument(src string) (*Document, error) { return xmldoc.ParseString(src) }

// OpenDocument indexes an already-parsed document.
func OpenDocument(doc *Document, opts ...Option) *Engine {
	o := collect(opts)
	e := engine.New(doc, o.pipeline)
	if o.scorer != nil {
		e.Index().SetScorer(o.scorer)
	}
	e.UseAnalysisCache(engine.NewAnalysisCache(analysisCacheSize))
	return &Engine{e: e, cache: newCache(o)}
}

// Document returns the engine's parsed document.
func (e *Engine) Document() *Document { return e.e.Document() }

// Search evaluates q personalized by prof (nil disables personalization)
// and returns the top-k answers ranked by the profile's rank order.
func (e *Engine) Search(q *Query, prof *Profile, opts ...Option) (*Response, error) {
	return e.SearchContext(context.Background(), q, prof, opts...)
}

// SearchContext is Search under a context: when ctx (or the WithDeadline
// option) expires, evaluation aborts cooperatively and SearchContext
// returns the context's error instead of a truncated answer list.
// Responses served from a WithCache cache are shared: treat them as
// read-only.
func (e *Engine) SearchContext(ctx context.Context, q *Query, prof *Profile, opts ...Option) (*Response, error) {
	o := collect(opts)
	if o.deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.deadline)
		defer cancel()
	}
	req := engine.Request{
		Query:           q,
		Profile:         prof,
		K:               o.k,
		Strategy:        o.strategy,
		LiteralRewrite:  o.literal,
		TwigAccess:      o.twig,
		Access:          o.access,
		Parallelism:     o.par,
		Thesaurus:       o.thesaurus,
		ThesaurusWeight: o.thWeight,
	}
	if e.cache == nil || q == nil || o.k < 0 {
		return e.e.SearchContext(ctx, req)
	}
	key := req.CacheKey(e.e.Fingerprint(), e.e.ResolvedParallelism(&req))
	v, outcome, err := e.cache.Do(ctx, key, func() (any, error) {
		return e.e.SearchContext(ctx, req)
	})
	if err != nil {
		return nil, err
	}
	resp := v.(*engine.Response)
	if outcome != server.Miss {
		hit := *resp // shallow copy so the stored response stays unmarked
		hit.Cached = true
		return &hit, nil
	}
	return resp, nil
}

// Analyze runs the paper's Section 5 static analyses (scoping-rule
// conflicts and application order, query flock, ordering-rule ambiguity)
// without executing the query.
func Analyze(prof *Profile, q *Query) *ProfileAnalysis {
	return engine.AnalyzeProfile(prof, q)
}

// Diagnostic is one finding of the vet suite: a stable check ID, a
// severity (error | warn | info), the affected rules, and a concrete
// witness (conflict cycle, Lemma 5.1 alternating cycle, contradictory
// predicate pair, ...).
type Diagnostic = analysis.Diagnostic

// Vet runs the profile/query static-analysis suite and returns its
// findings, sorted canonically (byte-stable across runs). q may be nil
// for profile-only checks. A profile with no error-severity diagnostics
// is accepted by Search; one with an error diagnostic is rejected.
func Vet(prof *Profile, q *Query) []Diagnostic { return analysis.Vet(prof, q) }

// VetErrors counts the error-severity findings in a Vet result.
func VetErrors(ds []Diagnostic) int { return analysis.ErrorCount(ds) }

// Save writes a binary snapshot of the engine (document + index) so it
// can be reopened with LoadEngine without re-parsing and re-indexing.
func (e *Engine) Save(w io.Writer) error { return e.e.Save(w) }

// LoadEngine reads a snapshot written by Engine.Save.
func LoadEngine(r io.Reader) (*Engine, error) {
	eng, err := engine.Load(r)
	if err != nil {
		return nil, err
	}
	return &Engine{e: eng}, nil
}

// CorpusResult is one globally ranked answer of a corpus search.
type CorpusResult = corpus.Result

// CorpusResponse is a corpus search outcome.
type CorpusResponse = corpus.Response

// Corpus searches a collection of XML documents, fanning the query out
// in parallel and merging the per-document top-k lists globally.
type Corpus struct {
	c *corpus.Corpus
}

// NewCorpus creates an empty corpus. Text-pipeline options
// (WithStemming, WithStopwords) apply to every document added.
func NewCorpus(opts ...Option) *Corpus {
	o := collect(opts)
	return &Corpus{c: corpus.New(o.pipeline)}
}

// Add indexes doc under name (replacing any previous document with that
// name).
func (c *Corpus) Add(name string, doc *Document) { c.c.Add(name, doc) }

// AddXML parses src and adds it under name.
func (c *Corpus) AddXML(name, src string) error { return c.c.AddXML(name, src) }

// Len returns the number of documents in the corpus.
func (c *Corpus) Len() int { return c.c.Len() }

// Save writes the whole corpus (documents + indexes) as one binary
// snapshot.
func (c *Corpus) Save(w io.Writer) error { return c.c.Save(w) }

// LoadCorpus reads a corpus snapshot written by Corpus.Save.
func LoadCorpus(r io.Reader) (*Corpus, error) {
	cc, err := corpus.Load(r)
	if err != nil {
		return nil, err
	}
	return &Corpus{c: cc}, nil
}

// Search personalizes q with prof and evaluates it against every
// document, returning the global top k. Negative WithK values are
// rejected; 0 (the default) resolves to 10.
func (c *Corpus) Search(q *Query, prof *Profile, opts ...Option) (*CorpusResponse, error) {
	return c.SearchContext(context.Background(), q, prof, opts...)
}

// SearchContext is Corpus.Search under a context: the per-document
// fan-out aborts cooperatively when ctx is done (see WithDeadline).
func (c *Corpus) SearchContext(ctx context.Context, q *Query, prof *Profile, opts ...Option) (*CorpusResponse, error) {
	o := collect(opts)
	if o.deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.deadline)
		defer cancel()
	}
	return c.c.SearchContext(ctx, q, prof, o.k, o.strategy)
}
