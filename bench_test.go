package pimento

// Benchmark harness for the paper's evaluation artifacts. One benchmark
// per table/figure:
//
//	BenchmarkTable1INEX  — Table 1 (INEX effectiveness, 8 topics)
//	BenchmarkFig6        — Fig. 6 (Push plan × document size × #KORs)
//	BenchmarkFig7        — Fig. 7 (four plans × #KORs on a large doc)
//	BenchmarkAblation*   — Section 7.2 design observations
//
// The Fig. 6/7 benchmarks use sub-benchmarks: run e.g.
//
//	go test -bench 'Fig6/size=1M' -benchmem
//
// Absolute times differ from the paper's 2007 hardware; the claims under
// test are the shapes (sub-linear size scaling, Push ≤ Naive).

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/algebra"
	"repro/internal/index"
	"repro/internal/inex"
	"repro/internal/plan"
	"repro/internal/text"
	"repro/internal/twig"
	"repro/internal/workload"
	"repro/internal/xmark"
)

// benchSizes trims the paper's sweep to keep `go test -bench=.` runnable
// in reasonable time; pass -bench 'Fig6' after editing to widen.
var benchSizes = []int{101 * 1024, 468 * 1024, 1024 * 1024, 5*1024*1024 + 700*1024}

// fig7Size is Fig. 7's document size for benchmarks (the paper uses
// 10 MB; 5.7 MB keeps default runs fast while preserving the plan
// ordering — cmd/experiments runs the full 10 MB version).
const fig7Size = 5*1024*1024 + 700*1024

var (
	ixCacheMu sync.Mutex
	ixCache   = map[int]*index.Index{}
)

func xmarkIndex(size int) *index.Index {
	ixCacheMu.Lock()
	defer ixCacheMu.Unlock()
	if ix, ok := ixCache[size]; ok {
		return ix
	}
	doc := xmark.GenerateSized(xmark.Config{Seed: 42}, size)
	ix := index.Build(doc, text.Pipeline{})
	ixCache[size] = ix
	return ix
}

// BenchmarkTable1INEX regenerates Table 1 per iteration (collection
// build + 8 topics × element types × personalized top-5 runs).
func BenchmarkTable1INEX(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := inex.RunTable1(42, true)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 8 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkFig6 measures the Push plan on increasing document sizes and
// KOR counts (query time only; the index is prebuilt, as in the paper).
func BenchmarkFig6(b *testing.B) {
	for _, size := range benchSizes {
		ix := xmarkIndex(size)
		for n := 1; n <= 4; n++ {
			prof := workload.Fig5Profile(n)
			b.Run(fmt.Sprintf("size=%s/kors=%d", xmark.SizeLabel(size), n), func(b *testing.B) {
				q := workload.Fig5Query()
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					p, err := plan.Build(ix, q, prof, 10, plan.Push)
					if err != nil {
						b.Fatal(err)
					}
					if got := p.Execute(); len(got) == 0 {
						b.Fatal("no answers")
					}
				}
			})
		}
	}
}

// benchParallelisms are the worker counts the parallel benchmarks sweep:
// the sequential reference path plus GOMAXPROCS (deduplicated on
// single-CPU machines, where they coincide).
func benchParallelisms() []int {
	ps := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		ps = append(ps, n)
	}
	return ps
}

// BenchmarkFig7 compares the four plan strategies on one large document,
// each at sequential (par=1) and fully parallel (par=GOMAXPROCS)
// execution. The parallel rows measure the tentpole claim: partitioned
// execution with the shared top-k threshold returns identical answers in
// less wall-clock time.
func BenchmarkFig7(b *testing.B) {
	ix := xmarkIndex(fig7Size)
	for _, strat := range plan.Strategies {
		for n := 1; n <= 4; n++ {
			prof := workload.Fig5Profile(n)
			for _, par := range benchParallelisms() {
				b.Run(fmt.Sprintf("plan=%s/kors=%d/par=%d", strat, n, par), func(b *testing.B) {
					q := workload.Fig5Query()
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						p, err := plan.BuildWith(ix, q, prof, 10,
							plan.Options{Strategy: strat, Parallelism: par})
						if err != nil {
							b.Fatal(err)
						}
						if got := p.Execute(); len(got) == 0 {
							b.Fatal("no answers")
						}
					}
				})
			}
		}
	}
}

// BenchmarkParScale sweeps document size × worker count on the Push
// plan (kors=4), the scaling surface scripts/bench_parallel.sh writes to
// BENCH_parallel.json. Explicit worker counts above GOMAXPROCS are
// included deliberately: they expose the partitioning overhead floor.
func BenchmarkParScale(b *testing.B) {
	for _, size := range benchSizes {
		ix := xmarkIndex(size)
		prof := workload.Fig5Profile(4)
		for _, par := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("size=%s/par=%d", xmark.SizeLabel(size), par), func(b *testing.B) {
				q := workload.Fig5Query()
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					p, err := plan.BuildWith(ix, q, prof, 10,
						plan.Options{Strategy: plan.Push, Parallelism: par})
					if err != nil {
						b.Fatal(err)
					}
					if got := p.Execute(); len(got) == 0 {
						b.Fatal("no answers")
					}
				}
			})
		}
	}
}

// BenchmarkAblationKOROrder contrasts applying the highest-contribution
// KOR first vs last (Section 7.2: "applying the KOR which contributes
// the highest score first is beneficial").
func BenchmarkAblationKOROrder(b *testing.B) {
	ix := xmarkIndex(1024 * 1024)
	base := workload.Fig5Profile(4)
	for _, variant := range []struct {
		name    string
		reverse bool
	}{{"best-first", false}, {"worst-first", true}} {
		prof := *base
		kors := append(prof.KORs[:0:0], prof.KORs...)
		if variant.reverse {
			for i, j := 0, len(kors)-1; i < j; i, j = i+1, j-1 {
				kors[i], kors[j] = kors[j], kors[i]
			}
			for i := range kors {
				c := *kors[i]
				c.Priority = i + 1
				kors[i] = &c
			}
		}
		prof.KORs = kors
		b.Run(variant.name, func(b *testing.B) {
			q := workload.Fig5Query()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p, err := plan.Build(ix, q, &prof, 10, plan.Push)
				if err != nil {
					b.Fatal(err)
				}
				p.Execute()
			}
		})
	}
}

// BenchmarkAblationPushDepth contrasts the plain Push plan with PushDeep
// (prunes between the score-contributing joins, using query-scorebounds).
func BenchmarkAblationPushDepth(b *testing.B) {
	ix := xmarkIndex(1024 * 1024)
	prof := workload.Fig5Profile(4)
	for _, variant := range []struct {
		name string
		s    plan.Strategy
	}{{"push", plan.Push}, {"push-deep", plan.PushDeep}} {
		b.Run(variant.name, func(b *testing.B) {
			q := workload.Fig5Query()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p, err := plan.Build(ix, q, prof, 10, variant.s)
				if err != nil {
					b.Fatal(err)
				}
				p.Execute()
			}
		})
	}
}

// BenchmarkAblationTwigAccess contrasts the scan + per-candidate access
// path with the holistic twig semijoin on a structure-heavy query.
func BenchmarkAblationTwigAccess(b *testing.B) {
	ix := xmarkIndex(1024 * 1024)
	q := MustParseQuery(`//person[./address[./city and ./country] and .//business]`)
	for _, variant := range []struct {
		name string
		opts plan.Options
	}{
		{"scan", plan.Options{Strategy: plan.Push}},
		{"twig", plan.Options{Strategy: plan.Push, TwigAccess: true}},
	} {
		b.Run(variant.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p, err := plan.BuildWith(ix, q, nil, 10, variant.opts)
				if err != nil {
					b.Fatal(err)
				}
				if got := p.Execute(); len(got) == 0 {
					b.Fatal("no answers")
				}
			}
		})
	}
}

// BenchmarkTwigJoin is the access-path comparison surface
// scripts/bench_twigjoin.sh writes to BENCH_twigjoin.json:
//
//   - fig7: the four Fig. 7 plan strategies on the Fig. 5 workload
//     (kors=4) at the large document, scan vs twigjoin;
//   - size sweep: a structure-heavy query (three structural predicates,
//     no full text) across 101K–5.7M, scan vs twigjoin;
//   - access: the same query and sizes with the candidate generation
//     isolated (matcher scan vs fused holistic join, no scoring
//     pipeline) — the pure access-path speedup.
//
// The Fig. 5 query's cost is dominated by its full-text predicate, so
// fig7 mostly bounds the twigjoin overhead on FT-heavy plans; the size
// sweep and the access group carry the speedup claim.
func BenchmarkTwigJoin(b *testing.B) {
	accesses := []plan.AccessPath{plan.AccessScan, plan.AccessTwigJoin}
	ix := xmarkIndex(fig7Size)
	prof := workload.Fig5Profile(4)
	for _, strat := range plan.Strategies {
		for _, access := range accesses {
			b.Run(fmt.Sprintf("fig7/plan=%s/access=%s", strat, access), func(b *testing.B) {
				q := workload.Fig5Query()
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					p, err := plan.BuildWith(ix, q, prof, 10,
						plan.Options{Strategy: strat, AccessPath: access})
					if err != nil {
						b.Fatal(err)
					}
					if got := p.Execute(); len(got) == 0 {
						b.Fatal("no answers")
					}
				}
			})
		}
	}
	for _, size := range benchSizes {
		ix := xmarkIndex(size)
		for _, access := range accesses {
			b.Run(fmt.Sprintf("size=%s/access=%s", xmark.SizeLabel(size), access), func(b *testing.B) {
				q := MustParseQuery(`//person[./address[./city and ./country] and .//business]`)
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					p, err := plan.BuildWith(ix, q, nil, 10,
						plan.Options{Strategy: plan.Push, AccessPath: access})
					if err != nil {
						b.Fatal(err)
					}
					if got := p.Execute(); len(got) == 0 {
						b.Fatal("no answers")
					}
				}
			})
		}
	}
	for _, size := range benchSizes {
		ix := xmarkIndex(size)
		b.Run(fmt.Sprintf("access/size=%s/access=scan", xmark.SizeLabel(size)), func(b *testing.B) {
			q := MustParseQuery(`//person[./address[./city and ./country] and .//business]`)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m := algebra.NewMatcher(ix, q)
				n := 0
				for _, e := range ix.Elements("person") {
					if m.MatchRequired(e) {
						n++
					}
				}
				if n == 0 {
					b.Fatal("no candidates")
				}
			}
		})
		b.Run(fmt.Sprintf("access/size=%s/access=twigjoin", xmark.SizeLabel(size)), func(b *testing.B) {
			q := MustParseQuery(`//person[./address[./city and ./country] and .//business]`)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ev := twig.NewEvaluator(ix, q)
				ids, _, err := ev.Distinguished(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				if len(ids) == 0 {
					b.Fatal("no candidates")
				}
			}
		})
	}
}

// BenchmarkQuickstart measures the end-to-end running example (Fig. 1
// database, Fig. 2 profile) including personalization static analysis.
func BenchmarkQuickstart(b *testing.B) {
	eng, err := OpenString(workload.Fig1XML)
	if err != nil {
		b.Fatal(err)
	}
	q := workload.PaperQuery()
	prof := MustParseProfile(workload.Plan1ProfileSrc)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := eng.Search(q, prof, WithK(5))
		if err != nil {
			b.Fatal(err)
		}
		if len(resp.Results) == 0 {
			b.Fatal("no results")
		}
	}
}

// BenchmarkIndexBuild measures index construction on a 1 MB document
// (excluded from the query-time figures, reported separately).
func BenchmarkIndexBuild(b *testing.B) {
	doc := xmark.GenerateSized(xmark.Config{Seed: 42}, 1024*1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		index.Build(doc, text.Pipeline{})
	}
}
