# Developer entry points. `make ci` is the full gate: formatting, vet,
# build, tests (including -race), coverage floors, and the concurrency
# smoke suite (parallel-equivalence + server stress).

GO ?= go

.PHONY: ci fmt-check vet build test race smoke cover fuzz-smoke mutation-smoke registry-smoke bench-parallel bench-twigjoin bench-serving serving-smoke metrics-lint profile vet-profiles analyze analyze-build analyze-test analyze-baseline analyze-fix-list

ci: fmt-check vet build test race smoke cover metrics-lint analyze analyze-test vet-profiles serving-smoke mutation-smoke registry-smoke

fmt-check:
	@files="$$(gofmt -l .)"; \
	if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; \
	fi

# The invariant checker (tools/analyze, its own module). The binary is
# rebuilt only when its sources change; go vet caches per-package
# results against a hash of the binary, so a clean re-run is cheap.
ANALYZE := tools/analyze/bin/pimento-analyze

$(ANALYZE): $(shell find tools/analyze -name '*.go' -not -path '*/testdata/*') tools/analyze/go.mod
	cd tools/analyze && $(GO) build -o bin/pimento-analyze ./cmd/pimento-analyze

analyze-build: $(ANALYZE)

# vet runs the standard analyzers AND the pimento suite over the main
# module, the analyzer module itself, and every cmd/ main package.
vet: $(ANALYZE)
	$(GO) vet ./...
	$(GO) vet -vettool=$(abspath $(ANALYZE)) ./...
	cd tools/analyze && $(GO) vet ./...

# The zero-finding gate: `go vet -vettool` relays pimento-analyze
# findings as vet failures, so any unsuppressed violation fails ci.
analyze: $(ANALYZE)
	$(GO) vet -vettool=$(abspath $(ANALYZE)) ./...

# The analyzer suite's own tests: analysistest fixtures per analyzer
# plus the end-to-end vettool-protocol test over testdata/badmod.
analyze-test:
	cd tools/analyze && $(GO) test ./...

# Audit mode: every finding as a markdown checklist, suppressions with
# their reasons, exit 0 regardless — the fix-list generator.
analyze-baseline: $(ANALYZE)
	$(ANALYZE) -baseline ./...

analyze-fix-list: analyze-baseline

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The headline correctness properties under the race detector: identical
# ranked answers at every parallelism level, the engine-level concurrent
# stress run, and the serving layer's mixed-traffic stress (shared
# cache, mid-flight deadline expiry, goroutine-leak check) plus the
# live-corpus stress (concurrent searchers, mutators, /watch pollers —
# every answer must match some reachable corpus state).
smoke:
	$(GO) test -race -run 'TestParallelMatchesSequential|TestConcurrentSearches|TestAnalysisCacheStress' \
		./internal/plan/ ./internal/engine/ -count=1
	$(GO) test -race -run 'TestServerStress|TestCacheEquivalenceProperty|TestCacheSingleFlight|TestMutationStress' \
		./internal/server/ -count=2

# Coverage floors on the layers the serving path leans on. The floor is
# a gate, not a target: new handlers and cache paths ship with tests.
COVER_FLOOR := 80
cover:
	@for pkg in ./internal/server/ ./internal/plan/ ./internal/analysis/ ./internal/corpus/ ./internal/registry/; do \
		pct="$$($(GO) test -count=1 -cover $$pkg | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p')"; \
		if [ -z "$$pct" ]; then echo "cover: no coverage output for $$pkg"; exit 1; fi; \
		ok="$$(awk "BEGIN{print ($$pct >= $(COVER_FLOOR)) ? 1 : 0}")"; \
		if [ "$$ok" != 1 ]; then \
			echo "cover: $$pkg at $$pct% is below the $(COVER_FLOOR)% floor"; exit 1; \
		fi; \
		echo "cover: $$pkg $$pct% (floor $(COVER_FLOOR)%)"; \
	done

# A short fuzz pass over every fuzz target: the three parsers, the
# /search handler, the profile vet, and the scan-vs-twigjoin access-path
# differential. Catches regressions in input hardening and join
# correctness without the open-ended runtime of a real fuzz campaign.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -fuzz FuzzParse -fuzztime $(FUZZTIME) -run '^$$' ./internal/tpq/
	$(GO) test -fuzz FuzzParseXML -fuzztime $(FUZZTIME) -run '^$$' ./internal/xmldoc/
	$(GO) test -fuzz FuzzParseProfile -fuzztime $(FUZZTIME) -run '^$$' ./internal/profile/
	$(GO) test -fuzz FuzzSearchHandler -fuzztime $(FUZZTIME) -run '^$$' ./internal/server/
	$(GO) test -fuzz FuzzDocUpdate -fuzztime $(FUZZTIME) -run '^$$' ./internal/server/
	$(GO) test -fuzz FuzzVetProfile -fuzztime $(FUZZTIME) -run '^$$' ./internal/analysis/
	$(GO) test -fuzz FuzzTwigJoin -fuzztime $(FUZZTIME) -run '^$$' ./internal/twig/

# Metrics hygiene: the /metrics exposition must parse cleanly and every
# label value must come from a compile-time-enumerable set (no dynamic
# cardinality minted from request content). See DESIGN.md §11.
metrics-lint:
	$(GO) test -run 'TestMetricsEndpoint|TestMetricsLabelLint|TestExpositionFormat' \
		./internal/server/ ./internal/metrics/ -count=1

# Vets every example profile: *.bad.profile files must be rejected,
# everything else must come back clean. Guards the shipped examples and
# the vet CLI's exit-status contract in one pass.
vet-profiles:
	scripts/vet_profiles.sh

# Regenerates BENCH_parallel.json (BENCHTIME=5s for stable numbers).
bench-parallel:
	scripts/bench_parallel.sh

# Regenerates BENCH_twigjoin.json: scan vs holistic twig join across
# plan strategies and document sizes (BENCHTIME=5s for stable numbers).
bench-twigjoin:
	scripts/bench_twigjoin.sh

# Regenerates BENCH_serving.json: pimentod p50/p99/QPS under load with
# the admission scheduler (pooled) vs without it (naive), via
# cmd/loadgen. DURATION=10s for stable numbers.
bench-serving:
	scripts/loadtest.sh

# Fixed-seed serving smoke for CI: one small A/B matrix at low load —
# zero errors, answers byte-identical to the sequential baseline, p99
# bounded. Catches scheduler deadlocks and answer drift, not perf.
serving-smoke:
	DURATION=2s SIZES=101K CONCS=16 MAX_P99_MS=5000 scripts/loadtest.sh /tmp/bench_serving_smoke.json

# Fixed-seed live-corpus gate for CI: the differential equivalence
# suites — "mutate then query" answers byte-identical to "rebuild from
# scratch then query" on both access paths — plus the cache-precision
# property (untouched docs keep their entries, touched docs never serve
# stale bytes) and the watch replay/resync contract. Deterministic
# seeds; see DESIGN.md §15.
mutation-smoke:
	$(GO) test -run 'TestMutateThenQueryEquivalence|TestMutationCachePrecision|TestPutDeleteDocContract|TestWatch' \
		./internal/server/ -count=1
	$(GO) test -run 'TestCorpusMutateEquivalence|TestSnapshotIsolation|TestGenerationStampedFingerprints' \
		./internal/corpus/ -count=1

# Fixed-seed registry gate for CI: the concurrent
# register/search-by-name/delete walk under the race detector (every
# response a clean, classified outcome; no goroutine leaks) plus the
# degraded-fan-out and dedup contracts. See DESIGN.md §16.
registry-smoke:
	$(GO) test -race -run 'TestRegistryStress|TestFanoutDegraded|TestProfileDedupSharesVerdictAndCache' \
		./internal/server/ -count=1

# Profiles pimentod under a Fig. 7-style workload: starts the daemon
# with pprof enabled on -debug-addr, drives repeated personalized
# searches against a generated XMark document, and saves CPU/heap
# profiles next to the script's output directory.
profile:
	scripts/profile.sh
