# Developer entry points. `make ci` is the full gate: formatting, vet,
# build, tests (including -race), and the parallel-vs-sequential
# equivalence smoke.

GO ?= go

.PHONY: ci fmt-check vet build test race smoke bench-parallel

ci: fmt-check vet build test race smoke

fmt-check:
	@files="$$(gofmt -l .)"; \
	if [ -n "$$files" ]; then \
		echo "gofmt needed on:"; echo "$$files"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The headline correctness property of parallel execution: identical
# ranked answers at every parallelism level, plus the engine-level
# concurrent stress run under the race detector.
smoke:
	$(GO) test -race -run 'TestParallelMatchesSequential|TestConcurrentSearches' \
		./internal/plan/ ./internal/engine/ -count=1

# Regenerates BENCH_parallel.json (BENCHTIME=5s for stable numbers).
bench-parallel:
	scripts/bench_parallel.sh
