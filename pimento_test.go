package pimento

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/workload"
)

func TestPublicAPIQuickstart(t *testing.T) {
	eng, err := OpenString(workload.Fig1XML)
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseQuery(`//car[./description[. ftcontains "good condition"] and price < 2000]`)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := ParseProfile(workload.Plan1ProfileSrc)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := eng.Search(q, prof, WithK(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("results = %+v", resp.Results)
	}
	if !strings.Contains(resp.Results[0].Snippet, "best bid") {
		t.Errorf("KOR-preferred car must rank first")
	}
}

func TestPublicAPIOptions(t *testing.T) {
	eng, err := OpenString(workload.Fig1XML, WithStemming(false))
	if err != nil {
		t.Fatal(err)
	}
	q := MustParseQuery(`//car[. ftcontains "conditions"]`)
	resp, err := eng.Search(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 0 {
		t.Errorf("without stemming, 'conditions' must not match 'condition'")
	}

	eng2, _ := OpenString(workload.Fig1XML, WithStemming(true))
	resp2, err := eng2.Search(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp2.Results) == 0 {
		t.Errorf("with stemming, 'conditions' matches 'condition'")
	}
}

func TestPublicAPIStrategies(t *testing.T) {
	eng, _ := OpenString(workload.Fig1XML)
	q := MustParseQuery(`//car[. ftcontains "good condition"]`)
	prof := MustParseProfile(workload.Plan1ProfileSrc)
	var first []Result
	for _, s := range []Strategy{Naive, InterleaveNoSort, InterleaveSort, Push, PushDeep} {
		resp, err := eng.Search(q, prof, WithStrategy(s), WithK(3))
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if first == nil {
			first = resp.Results
			continue
		}
		if len(resp.Results) != len(first) {
			t.Errorf("%v: result count differs", s)
		}
	}
}

func TestPublicAPIAnalyze(t *testing.T) {
	prof := MustParseProfile(workload.Fig2ProfileSrc)
	pa := Analyze(prof, workload.PaperQuery())
	if pa.ConflictErr != nil {
		t.Fatalf("prioritized Fig. 2 profile: %v", pa.ConflictErr)
	}
	if len(pa.Flock) < 2 {
		t.Errorf("flock = %d", len(pa.Flock))
	}
}

func TestPublicAPILiteralRewrite(t *testing.T) {
	eng, _ := OpenString(workload.Fig1XML)
	prof := MustParseProfile(workload.Plan1ProfileSrc)
	resp, err := eng.Search(workload.PaperQuery(), prof, WithLiteralRewrite(), WithK(5))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.PlanShape, "flock") {
		t.Errorf("PlanShape = %q", resp.PlanShape)
	}
}

func TestThesaurusExpansion(t *testing.T) {
	// Two cars: one says "good condition", the other the synonym
	// "excellent shape". Without a thesaurus only the first matches;
	// with one, both match and the exact match ranks first.
	src := `<dealer>
	  <car><description>excellent shape, one owner</description></car>
	  <car><description>good condition, city car</description></car>
	</dealer>`
	eng, err := OpenString(src)
	if err != nil {
		t.Fatal(err)
	}
	q := MustParseQuery(`//car[./description[. ftcontains "good condition"]]`)

	plain, err := eng.Search(q, nil, WithK(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Results) != 1 {
		t.Fatalf("without thesaurus: %d results", len(plain.Results))
	}

	th := NewThesaurus()
	th.Add("good condition", "excellent shape")
	expanded, err := eng.Search(q, nil, WithK(5), WithThesaurus(th, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	// Expansion adds optional predicates: the exact match still filters
	// (required predicate unchanged), so the synonym-only car is NOT
	// admitted — but the exact-match car gains nothing. To admit synonym
	// matches the required predicate must be relaxed by a scoping rule;
	// combine both:
	prof := MustParseProfile(`sr relax priority 1: if ftcontains(description, "good condition") then remove ftcontains(description, "good condition")`)
	both, err := eng.Search(q, prof, WithK(5), WithThesaurus(th, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	if len(both.Results) != 2 {
		t.Fatalf("relax + thesaurus should admit both cars: %+v", both.Results)
	}
	if !strings.Contains(both.Results[0].Snippet, "good condition") {
		t.Errorf("exact match must rank first: %+v", both.Results)
	}
	if !(both.Results[0].S > both.Results[1].S) {
		t.Errorf("synonym match must score lower: %+v", both.Results)
	}
	_ = expanded
}

func TestPublicAPICorpus(t *testing.T) {
	c := NewCorpus()
	if err := c.AddXML("a", `<d><car><description>good condition</description></car></d>`); err != nil {
		t.Fatal(err)
	}
	doc, err := ParseDocument(`<d><car><description>good condition, best bid</description></car></d>`)
	if err != nil {
		t.Fatal(err)
	}
	c.Add("b", doc)
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
	prof := MustParseProfile(`kor k: x.tag = car & y.tag = car & ftcontains(x, "best bid") => x < y`)
	resp, err := c.Search(MustParseQuery(`//car[. ftcontains "good condition"]`), prof, WithK(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 2 || resp.Results[0].DocName != "b" {
		t.Fatalf("results = %+v", resp.Results)
	}
}

func TestPublicAPISaveLoad(t *testing.T) {
	eng, err := OpenString(workload.Fig1XML)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := eng.Save(&buf); err != nil {
		t.Fatal(err)
	}
	eng2, err := LoadEngine(&buf)
	if err != nil {
		t.Fatal(err)
	}
	q := MustParseQuery(`//car[color = "red"]`)
	r1, _ := eng.Search(q, nil)
	r2, err := eng2.Search(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Results) != len(r2.Results) {
		t.Fatalf("snapshot changed results: %d vs %d", len(r1.Results), len(r2.Results))
	}
	if _, err := LoadEngine(bytes.NewReader([]byte("junk"))); err == nil {
		t.Errorf("junk snapshot must fail")
	}
}

func TestPublicAPIMiscOptions(t *testing.T) {
	doc, err := ParseDocument(workload.Fig1XML)
	if err != nil {
		t.Fatal(err)
	}
	eng := OpenDocument(doc, WithStopwords())
	if eng.Document() != doc {
		t.Errorf("Document() identity lost")
	}
	// Stopwords dropped: "the" alone cannot match.
	resp, err := eng.Search(MustParseQuery(`//car[. ftcontains "the"]`), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 0 {
		t.Errorf("stopword matched: %+v", resp.Results)
	}

	// Twig access through the public API.
	resp, err = eng.Search(MustParseQuery(`//car[./price]`), nil, WithTwigAccess(), WithK(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 {
		t.Errorf("twig access results = %d", len(resp.Results))
	}

	th, err := ParseThesaurus(`good condition = excellent shape`)
	if err != nil {
		t.Fatal(err)
	}
	if th.Len() != 1 {
		t.Errorf("thesaurus Len = %d", th.Len())
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := OpenString("<broken"); err == nil {
		t.Errorf("broken XML must fail")
	}
	if _, err := ParseQuery("not a query"); err == nil {
		t.Errorf("bad query must fail")
	}
	if _, err := ParseProfile("xyzzy nonsense"); err == nil {
		t.Errorf("bad profile must fail")
	}
}

func TestKeywordQueryCO(t *testing.T) {
	eng, _ := OpenString(workload.Fig1XML)
	q, err := KeywordQuery("good condition")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := eng.Search(q, nil, WithK(20))
	if err != nil {
		t.Fatal(err)
	}
	// Every result's subtree contains the phrase; multiple component
	// granularities (car, description, dealer) are returned, ranked.
	if len(resp.Results) < 4 {
		t.Fatalf("CO query results = %d", len(resp.Results))
	}
	tags := map[string]bool{}
	for _, r := range resp.Results {
		tags[eng.Document().Tag(r.Node)] = true
	}
	if !tags["car"] || !tags["description"] {
		t.Errorf("CO granularities missing: %v", tags)
	}
	if _, err := KeywordQuery(); err == nil {
		t.Errorf("empty keyword list must fail")
	}
	if _, err := KeywordQuery("  "); err == nil {
		t.Errorf("blank phrase must fail")
	}
}

func TestPublicAPICacheAndDeadline(t *testing.T) {
	eng, err := OpenString(workload.Fig1XML, WithCache(16))
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseQuery(`//car[price < 2000]`)
	if err != nil {
		t.Fatal(err)
	}

	cold, err := eng.Search(q, nil, WithK(3))
	if err != nil {
		t.Fatal(err)
	}
	if cold.Cached {
		t.Error("first search marked Cached")
	}
	hit, err := eng.Search(q, nil, WithK(3))
	if err != nil {
		t.Fatal(err)
	}
	if !hit.Cached {
		t.Error("repeat search not marked Cached")
	}
	if len(hit.Results) != len(cold.Results) {
		t.Fatalf("cached answer has %d results, cold had %d", len(hit.Results), len(cold.Results))
	}
	for i := range hit.Results {
		if hit.Results[i] != cold.Results[i] {
			t.Errorf("result %d diverged: %+v vs %+v", i, hit.Results[i], cold.Results[i])
		}
	}

	// A different K is a different cache key.
	other, err := eng.Search(q, nil, WithK(2))
	if err != nil {
		t.Fatal(err)
	}
	if other.Cached {
		t.Error("different-K search served from cache")
	}

	// An explicitly negative K is rejected, cache or no cache.
	if _, err := eng.Search(q, nil, WithK(-2)); err == nil {
		t.Error("negative K accepted")
	}

	// An immediately-expiring deadline aborts instead of answering. A
	// cached request would be answered anyway (a hit costs nothing), so
	// use a K no earlier search has populated.
	if _, err := eng.Search(q, nil, WithK(7), WithDeadline(time.Nanosecond)); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("deadline search err = %v, want context.DeadlineExceeded", err)
	}

	// The cached answer for the original request is still there.
	again, err := eng.Search(q, nil, WithK(3))
	if err != nil || !again.Cached {
		t.Errorf("after deadline abort: err = %v, Cached = %v; want cached answer", err, again.Cached)
	}
}
